//! Minimal API-compatible substitute for [`serde_json`], built on the
//! vendored serde [`Content`](serde::Content) data model.
//!
//! Provides [`to_string`] / [`to_vec`] / [`from_slice`] / [`from_str`] and
//! a dynamic [`Value`] with indexing and scalar comparisons — the surface
//! the workspace uses for policy-state persistence, the HTTP frontend, and
//! metric snapshots.

mod parse;
mod value;

pub use value::{Number, Value};

use serde::{Content, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize_content(), &mut out)?;
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse::parse(s.as_bytes())?;
    T::deserialize_content(&content).map_err(|e| Error::msg(e.to_string()))
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let content = parse::parse(bytes)?;
    T::deserialize_content(&content).map_err(|e| Error::msg(e.to_string()))
}

fn emit(c: &Content, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::msg("cannot serialize non-finite float"));
            }
            // Keep floats recognizably floating-point, like serde_json.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => emit_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let v: u32 = from_str("42").unwrap();
        assert_eq!(v, 42);
        let s: String = from_str("\"hi\\u0041\"").unwrap();
        assert_eq!(s, "hiA");
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let xs = vec![1u32, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, xs);
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v: Value = from_str(r#"{"total": 3, "name": "x", "xs": [1, 2.5]}"#).unwrap();
        assert_eq!(v["total"], 3);
        assert_eq!(v["name"], "x");
        assert_eq!(v["xs"][1], 2.5);
        assert!(v["absent"].is_null());
        assert_eq!(v.get("total").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn value_roundtrips_through_text() {
        let src = r#"{"a":[1,2,{"b":null}],"c":true,"d":-3,"e":1.25}"#;
        let v: Value = from_str(src).unwrap();
        let emitted = to_string(&v).unwrap();
        let v2: Value = from_str(&emitted).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<u32>("\"str\"").is_err());
        assert!(from_slice::<Value>(b"[1,]").is_err());
    }
}
