//! Ablation — AIMD backoff-constant sensitivity (DESIGN.md §6.1).
//!
//! The paper chooses a 10% backoff (×0.9), "much smaller than other AIMD
//! schemes", arguing the optimal batch size is stable. This ablation
//! sweeps the backoff factor against a simulated linear-latency container
//! and reports convergence time, steady-state batch size, oscillation
//! band, and SLO-violation rate — showing why gentle backoff wins.

use clipper_core::batching::{AimdController, BatchController};
use clipper_workload::Table;
use std::time::Duration;

fn main() {
    println!("== Ablation: AIMD backoff constant ==\n");
    let slo = Duration::from_millis(20);
    // Container: 1ms base + 20µs/item, 5% multiplicative jitter.
    let latency = |b: usize, tick: u64| -> Duration {
        let jitter = 1.0 + 0.05 * (((tick * 2_654_435_761) % 1_000) as f64 / 500.0 - 1.0);
        Duration::from_nanos(((1_000_000.0 + 20_000.0 * b as f64) * jitter) as u64)
    };
    let optimal = 950usize;

    let mut table = Table::new(&[
        "backoff",
        "ticks to 90% of optimal",
        "steady mean batch",
        "oscillation band",
        "violation rate",
    ]);

    for backoff in [0.5, 0.75, 0.9, 0.99] {
        let mut c = AimdController::new(slo, 2.0, backoff, 4096);
        let mut converged_at = None;
        let mut violations = 0u64;
        let (mut steady_sum, mut steady_n) = (0f64, 0u64);
        let (mut band_min, mut band_max) = (usize::MAX, 0usize);
        let ticks = 6_000u64;
        for t in 0..ticks {
            let b = c.max_batch();
            let lat = latency(b, t);
            if lat > slo {
                violations += 1;
            }
            if converged_at.is_none() && b >= optimal * 9 / 10 {
                converged_at = Some(t);
            }
            if t >= ticks - 2_000 {
                steady_sum += b as f64;
                steady_n += 1;
                band_min = band_min.min(b);
                band_max = band_max.max(b);
            }
            c.record(b, lat);
        }
        table.row(&[
            format!("{backoff}"),
            converged_at.map_or("never".into(), |t| format!("{t}")),
            format!("{:.0}", steady_sum / steady_n.max(1) as f64),
            format!("{}..{}", band_min, band_max),
            format!("{:.2}%", 100.0 * violations as f64 / ticks as f64),
        ]);
    }
    table.print();
    println!("\nexpected: aggressive backoff (0.5) converges but oscillates in a wide band and loses mean batch size;");
    println!("0.9 (the paper's choice) holds a tight band near the knee with a low violation rate");
}
