//! The readiness reactor: real `epoll` wakeups for the vendored runtime.
//!
//! Before this module existed, socket readiness was *emulated*: every
//! `WouldBlock` parked its task on the shared timer with a 20 µs → 1 ms
//! doubling backoff and retried blind. That put hidden sleep quanta and
//! idle timer churn on every predict RPC, statestore RESP call, and
//! frontend HTTP round-trip. The reactor removes the emulation: an fd is
//! registered with `epoll` (edge-triggered, both directions) once at
//! socket creation, an operation that hits `WouldBlock` parks its waker
//! in a per-fd, per-direction slot, and the task is woken exactly when
//! the kernel reports readiness.
//!
//! **Parking path.** The runtime's old I/O parking path was the timer
//! thread's `Condvar::wait_timeout` loop, re-armed by every backoff
//! retry. The reactor replaces that thread entirely: one driver thread
//! parks in `epoll_pwait2` with the **timer heap's next deadline as the
//! timeout** (indefinitely when no timer is armed), fires due timers on
//! wakeup, and dispatches readiness events to the parked wakers. A
//! cross-thread `eventfd` interrupts the park when a new, earlier timer
//! deadline is registered or the runtime needs the driver's attention.
//! An idle runtime therefore blocks in exactly one `epoll_pwait2` and
//! burns no periodic wakeups.
//!
//! Everything here is raw Linux syscalls via `core::arch::asm!`
//! ([`crate::sys`]) — no libc, consistent with the vendor policy. On
//! non-Linux hosts (or if reactor setup fails at runtime) the timer
//! backoff in [`crate::net`] remains as the portability fallback.

use crate::sys;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::task::{Context, Poll, Waker};

/// `data` value reserved for the eventfd wakeup channel.
const WAKE_TOKEN: u64 = u64::MAX;

/// I/O direction of an interest registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Direction {
    Read,
    Write,
}

/// Per-direction readiness state: an edge flag plus the parked waker.
#[derive(Default)]
struct DirState {
    /// A readiness edge arrived and has not been consumed by a poll yet.
    ready: bool,
    /// Waker parked by the last `WouldBlock`.
    waker: Option<Waker>,
}

/// Shared state of one registered fd.
struct IoEntry {
    read: DirState,
    write: DirState,
}

/// One slab slot: the entry plus a generation counter so a late event
/// for a freed slot can never wake a reused slot's wakers.
struct Slot {
    generation: u32,
    entry: Option<std::sync::Arc<Mutex<IoEntry>>>,
}

struct Slab {
    slots: Vec<Slot>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self) -> (usize, u32, std::sync::Arc<Mutex<IoEntry>>) {
        let entry = std::sync::Arc::new(Mutex::new(IoEntry {
            read: DirState::default(),
            write: DirState::default(),
        }));
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx];
                slot.generation = slot.generation.wrapping_add(1);
                slot.entry = Some(entry.clone());
                (idx, slot.generation, entry)
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    entry: Some(entry.clone()),
                });
                (self.slots.len() - 1, 0, entry)
            }
        }
    }

    fn remove(&mut self, idx: usize, generation: u32) {
        if let Some(slot) = self.slots.get_mut(idx) {
            if slot.generation == generation && slot.entry.is_some() {
                slot.entry = None;
                self.free.push(idx);
            }
        }
    }
}

fn pack(idx: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | idx as u64
}

fn unpack(data: u64) -> (usize, u32) {
    ((data & 0xffff_ffff) as usize, (data >> 32) as u32)
}

/// The process-wide reactor.
pub(crate) struct Reactor {
    epfd: i32,
    wake_fd: i32,
    slab: Mutex<Slab>,
    /// Cross-thread eventfd wakeups delivered (test/bench observability).
    wakeups: AtomicU64,
    /// Readiness events dispatched to fd wakers (test observability).
    io_events: AtomicU64,
}

static REACTOR: OnceLock<Option<&'static Reactor>> = OnceLock::new();

impl Reactor {
    /// The reactor, starting its driver thread on first call. `None` if
    /// epoll/eventfd setup failed (the caller falls back to the timer
    /// backoff).
    pub(crate) fn get() -> Option<&'static Reactor> {
        *REACTOR.get_or_init(|| {
            let reactor = Reactor::new().ok()?;
            let reactor: &'static Reactor = Box::leak(Box::new(reactor));
            std::thread::Builder::new()
                .name("tokio-reactor".to_string())
                .spawn(move || reactor.driver_loop())
                .ok()?;
            Some(reactor)
        })
    }

    fn new() -> io::Result<Reactor> {
        let epfd = sys::epoll_create1()?;
        let wake_fd = match sys::eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close(epfd);
                return Err(e);
            }
        };
        let result = sys::epoll_ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            wake_fd,
            Some(sys::EpollEvent {
                events: sys::EPOLLIN | sys::EPOLLET,
                data: WAKE_TOKEN,
            }),
        );
        if let Err(e) = result {
            sys::close(wake_fd);
            sys::close(epfd);
            return Err(e);
        }
        Ok(Reactor {
            epfd,
            wake_fd,
            slab: Mutex::new(Slab {
                slots: Vec::new(),
                free: Vec::new(),
            }),
            wakeups: AtomicU64::new(0),
            io_events: AtomicU64::new(0),
        })
    }

    /// Register `fd` for edge-triggered readiness in both directions.
    pub(crate) fn register(&'static self, fd: i32) -> io::Result<Registration> {
        let (idx, generation, entry) = self.slab.lock().unwrap().insert();
        let result = sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Some(sys::EpollEvent {
                events: sys::EPOLLIN
                    | sys::EPOLLOUT
                    | sys::EPOLLRDHUP
                    | sys::EPOLLERR
                    | sys::EPOLLHUP
                    | sys::EPOLLET,
                data: pack(idx, generation),
            }),
        );
        if let Err(e) = result {
            self.slab.lock().unwrap().remove(idx, generation);
            return Err(e);
        }
        Ok(Registration {
            reactor: self,
            fd,
            idx,
            generation,
            entry,
        })
    }

    /// Interrupt the driver's `epoll_pwait` (e.g. an earlier timer
    /// deadline was just registered).
    pub(crate) fn notify(&self) {
        let _ = sys::eventfd_write(self.wake_fd);
    }

    /// Live fd registrations (test support).
    pub(crate) fn registered_count(&self) -> usize {
        let slab = self.slab.lock().unwrap();
        slab.slots.len() - slab.free.len()
    }

    /// Cross-thread eventfd wakeups delivered so far (test support).
    pub(crate) fn wakeup_count(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Readiness events dispatched so far (test support).
    pub(crate) fn io_event_count(&self) -> u64 {
        self.io_events.load(Ordering::Relaxed)
    }

    /// The driver: fire due timers, then park in `epoll_pwait2` until the
    /// next timer deadline or a readiness event — the runtime's parking
    /// path, with the kernel doing the waiting.
    fn driver_loop(&'static self) {
        let mut events = [sys::EpollEvent::default(); 64];
        loop {
            let timeout = crate::time::advance_timers()
                .map(|deadline| deadline.saturating_duration_since(std::time::Instant::now()));
            let n = match sys::epoll_wait(self.epfd, &mut events, timeout) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // epoll on a healthy epfd only fails for EINTR; anything
                // else is unrecoverable for the driver — back off rather
                // than spin, and keep timers moving.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    continue;
                }
            };
            for ev in &events[..n] {
                let data = ev.data;
                if data == WAKE_TOKEN {
                    sys::eventfd_drain(self.wake_fd);
                    self.wakeups.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.dispatch(data, ev.events);
            }
        }
    }

    /// Deliver one readiness event: set the edge flags and wake parked
    /// wakers. Late events for freed/reused slots are dropped by the
    /// generation check.
    fn dispatch(&self, data: u64, evmask: u32) {
        let (idx, generation) = unpack(data);
        let read_ready =
            evmask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP) != 0;
        let write_ready = evmask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0;

        let entry = {
            let slab = self.slab.lock().unwrap();
            let Some(slot) = slab.slots.get(idx) else {
                return;
            };
            if slot.generation != generation {
                return;
            }
            let Some(entry) = &slot.entry else {
                return;
            };
            entry.clone()
        };
        let mut st = entry.lock().unwrap();
        let mut to_wake: [Option<Waker>; 2] = [None, None];
        if read_ready {
            st.read.ready = true;
            to_wake[0] = st.read.waker.take();
        }
        if write_ready {
            st.write.ready = true;
            to_wake[1] = st.write.waker.take();
        }
        drop(st);
        self.io_events.fetch_add(1, Ordering::Relaxed);
        for w in to_wake.into_iter().flatten() {
            w.wake();
        }
    }
}

/// A live epoll interest for one fd. Dropping it deregisters the fd and
/// frees the slot (wakers included) — no stale wakers survive.
pub(crate) struct Registration {
    reactor: &'static Reactor,
    fd: i32,
    idx: usize,
    generation: u32,
    /// Direct handle to the slab entry so the readiness hot path never
    /// touches the slab lock.
    entry: std::sync::Arc<Mutex<IoEntry>>,
}

impl Registration {
    /// Poll for a readiness edge in `dir`. Consumes a pending edge
    /// (caller retries the syscall); otherwise parks `cx`'s waker.
    ///
    /// Waker parking and the driver's edge delivery are serialized on the
    /// entry lock, so an edge that lands between the caller's failed
    /// syscall and this poll is never lost: it is observed here as
    /// `ready` and consumed.
    pub(crate) fn poll_ready(&self, dir: Direction, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.entry.lock().unwrap();
        let dst = match dir {
            Direction::Read => &mut st.read,
            Direction::Write => &mut st.write,
        };
        if dst.ready {
            dst.ready = false;
            Poll::Ready(())
        } else {
            dst.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        // Deregister *before* the owning socket closes the fd (struct
        // field order in `net` guarantees the registration drops first),
        // so the kernel never sees a DEL for a reused fd number.
        let _ = sys::epoll_ctl(self.reactor.epfd, sys::EPOLL_CTL_DEL, self.fd, None);
        self.reactor
            .slab
            .lock()
            .unwrap()
            .remove(self.idx, self.generation);
    }
}

// ---------------------------------------------------------------------
// Test/bench observability (public, stable-by-convention for the
// workspace's perf harnesses; not part of real tokio's API).
// ---------------------------------------------------------------------

/// Whether the epoll reactor is available (starting it if needed).
pub fn active() -> bool {
    Reactor::get().is_some()
}

/// Live fd registrations in the reactor slab (0 when inactive).
pub fn registered_fds() -> usize {
    Reactor::get().map_or(0, |r| r.registered_count())
}

/// Cross-thread eventfd wakeups the driver has absorbed (0 when inactive).
pub fn wakeup_count() -> u64 {
    Reactor::get().map_or(0, |r| r.wakeup_count())
}

/// Readiness events the driver has dispatched to fd wakers.
pub fn io_event_count() -> u64 {
    Reactor::get().map_or(0, |r| r.io_event_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_generation_guards_reuse() {
        let mut slab = Slab {
            slots: Vec::new(),
            free: Vec::new(),
        };
        let (idx, g0, _e0) = slab.insert();
        slab.remove(idx, g0);
        let (idx2, g1, _e1) = slab.insert();
        assert_eq!(idx, idx2, "slot is reused");
        assert_ne!(g0, g1, "generation advanced");
        // A stale remove with the old generation must not free the slot.
        slab.remove(idx2, g0);
        assert!(slab.slots[idx2].entry.is_some());
        slab.remove(idx2, g1);
        assert!(slab.slots[idx2].entry.is_none());
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (idx, generation) in [(0usize, 0u32), (7, 3), (0xffff_fffe, u32::MAX - 1)] {
            assert_eq!(unpack(pack(idx, generation)), (idx, generation));
        }
        // WAKE_TOKEN can never collide with a packed slot id whose index
        // stays below u32::MAX (the slab grows one slot at a time).
        assert_ne!(pack(0xffff_fffe, u32::MAX), WAKE_TOKEN);
    }
}
