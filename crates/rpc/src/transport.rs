//! The batch-transport abstraction.
//!
//! Everything the model abstraction layer talks to — TCP container handles,
//! in-process containers, fault-injection and simulated-network wrappers —
//! implements [`BatchTransport`]. The trait is object-safe (boxed futures)
//! so replica sets can mix transport kinds freely.

use crate::error::RpcError;
use crate::message::PredictReply;
use std::future::Future;
use std::pin::Pin;

/// Boxed future alias used by object-safe async traits.
pub type BoxFuture<T> = Pin<Box<dyn Future<Output = T> + Send>>;

/// A connection to one model container replica.
pub trait BatchTransport: Send + Sync + 'static {
    /// Evaluate a batch of feature vectors on the container.
    ///
    /// Implementations must preserve input order in the reply and should
    /// populate [`PredictReply::queue_us`] / [`PredictReply::compute_us`]
    /// when the information is available.
    fn predict_batch(&self, inputs: Vec<Vec<f32>>) -> BoxFuture<Result<PredictReply, RpcError>>;

    /// Stable identifier for logs/metrics (e.g. `"mnist-svm:0"`).
    fn id(&self) -> String;

    /// Whether the container is currently believed healthy.
    fn is_healthy(&self) -> bool {
        true
    }
}

/// A transport that computes predictions with a plain function — the
/// smallest useful implementation, used by unit tests across the workspace.
pub struct FnTransport<F> {
    id: String,
    f: F,
}

impl<F> FnTransport<F>
where
    F: Fn(Vec<Vec<f32>>) -> Result<PredictReply, RpcError> + Send + Sync + 'static,
{
    /// Wrap `f` as a transport.
    pub fn new(id: &str, f: F) -> Self {
        FnTransport {
            id: id.to_string(),
            f,
        }
    }
}

impl<F> BatchTransport for FnTransport<F>
where
    F: Fn(Vec<Vec<f32>>) -> Result<PredictReply, RpcError> + Send + Sync + 'static,
{
    fn predict_batch(&self, inputs: Vec<Vec<f32>>) -> BoxFuture<Result<PredictReply, RpcError>> {
        let out = (self.f)(inputs);
        Box::pin(async move { out })
    }

    fn id(&self) -> String {
        self.id.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireOutput;

    #[tokio::test]
    async fn fn_transport_echoes_batch_size() {
        let t = FnTransport::new("echo", |inputs| {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|i| WireOutput::Class(i.len() as u32))
                    .collect(),
                queue_us: 0,
                compute_us: 1,
            })
        });
        let reply = t
            .predict_batch(vec![vec![0.0; 3], vec![0.0; 7]])
            .await
            .unwrap();
        assert_eq!(
            reply.outputs,
            vec![WireOutput::Class(3), WireOutput::Class(7)]
        );
        assert_eq!(t.id(), "echo");
        assert!(t.is_healthy());
    }

    #[tokio::test]
    async fn fn_transport_propagates_errors() {
        let t = FnTransport::new("bad", |_| Err(RpcError::Remote("kaput".into())));
        let err = t.predict_batch(vec![]).await.unwrap_err();
        assert!(matches!(err, RpcError::Remote(_)));
    }
}
