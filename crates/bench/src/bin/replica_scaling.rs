//! Replica-scaling benchmark — the scheduler entry in the repo's bench
//! trajectory (`BENCH_replica_scaling.json`).
//!
//! Drives the model abstraction layer open-loop against 1/2/4 simulated
//! replicas, homogeneous and heterogeneous (one replica 10× slower per
//! query), under both scheduler policies:
//!
//! - `rr` — blind round-robin (the pre-scheduler baseline);
//! - `p2c` — depth-aware power-of-two-choices over queue backlog ×
//!   service-rate EWMA, with fall-through to any replica with room.
//!
//! Replicas are async-sleep transports (a batch of `n` costs
//! `n × per_item`), so the benchmark measures *scheduling*, not model
//! compute, and runs faithfully on a single-core container. Offered load
//! is ~70% of the pool's aggregate homogeneous service capacity, which
//! makes the heterogeneous round-robin rows overload their slow replica —
//! exactly the regime the scheduler exists for.
//!
//! Flags: `--smoke` (short phases for CI), `--seconds <f64>`,
//! `--out <path>` (default `BENCH_replica_scaling.json`). With
//! `REPLICA_SCALING_ENFORCE=1` the binary exits non-zero if the emitted
//! JSON fails to parse back, or the heterogeneous 2-replica comparison
//! does not show p2c with lower p99 and no more sheds than round-robin
//! (the ISSUE-3 acceptance gate).

use clipper_core::abstraction::{BatchConfig, ModelAbstractionLayer, SchedulerPolicy};
use clipper_core::{BatchStrategy, Input, ModelId, PredictError};
use clipper_metrics::Registry;
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::BatchTransport;
use clipper_workload::{run_open_loop_outcomes, ArrivalProcess, RequestOutcome, Table};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fast replica service time per query.
const FAST_US_PER_ITEM: u64 = 500;
/// Heterogeneity factor: the slow replica is 10× slower.
const SLOW_FACTOR: u32 = 10;
/// Offered load as a fraction of aggregate homogeneous capacity.
const LOAD_FRACTION: f64 = 0.7;
/// Queue capacity per replica — small enough that an overloaded replica
/// visibly sheds within a short phase.
const QUEUE_CAPACITY: usize = 64;
/// SLO for the §4.4.1 autotune A/B arm.
const AUTOTUNE_SLO_MS: u64 = 50;
/// Offered load for the A/B arm, as a fraction of aggregate capacity —
/// the same regime as the heterogeneous headline rows: a blind 1/R share
/// overloads the slow replica.
const AUTOTUNE_LOAD_FRACTION: f64 = 0.7;

#[derive(Clone, Serialize, Deserialize)]
struct RunResult {
    replicas: usize,
    mix: String,
    policy: String,
    offered_qps: f64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    shed: u64,
    errors: u64,
    /// Fraction of served queries handled by replica 0 (the slow one in
    /// heterogeneous rows).
    replica0_share: f64,
}

/// One arm of the §4.4.1 A/B: the same heterogeneous fleet under p2c at
/// elevated load, with continuous per-replica batch autotuning + SLO-aware
/// admission either on or off.
#[derive(Clone, Serialize, Deserialize)]
struct AutotuneArm {
    autotune: bool,
    offered_qps: f64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    shed: u64,
    lost: u64,
    errors: u64,
    /// Answered requests that came back later than the SLO. A shed is an
    /// honest, immediate 429 — not a violation.
    slo_violations: u64,
    /// `slo_violations` over all answered requests (completed + shed).
    slo_violation_rate: f64,
    /// Sheds decided up front by SLO-aware admission (subset of `shed`).
    admission_shed: u64,
    /// Learned batch ceiling of the slow replica (0 = never established).
    b_max_slow: usize,
    /// Learned batch ceiling of the fast replica (0 = never established).
    b_max_fast: usize,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    fast_us_per_item: u64,
    slow_factor: u32,
    load_fraction: f64,
    queue_capacity: usize,
    phase_seconds: f64,
    results: Vec<RunResult>,
    /// Heterogeneous 2-replica p99 (ms): round-robin vs p2c — the
    /// headline comparison.
    hetero_p99_ms_rr: f64,
    hetero_p99_ms_p2c: f64,
    hetero_shed_rr: u64,
    hetero_shed_p2c: u64,
    /// §4.4.1 A/B: per-replica autotuning + admission, off vs on.
    autotune_slo_ms: u64,
    autotune_load_fraction: f64,
    autotune_off: AutotuneArm,
    autotune_on: AutotuneArm,
}

struct SimReplica {
    per_item: Duration,
    served: Arc<AtomicU64>,
}

impl BatchTransport for SimReplica {
    fn predict_batch(
        &self,
        inputs: &[Input],
    ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
        let n = inputs.len();
        let (d, served) = (self.per_item, self.served.clone());
        Box::pin(async move {
            let total = d * n as u32;
            tokio::time::sleep(total).await;
            served.fetch_add(n as u64, Ordering::Relaxed);
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(0); n],
                queue_us: 0,
                compute_us: total.as_micros() as u64,
            })
        })
    }
    fn id(&self) -> String {
        "sim".into()
    }
}

fn policy_name(p: SchedulerPolicy) -> &'static str {
    match p {
        SchedulerPolicy::RoundRobin => "rr",
        SchedulerPolicy::PowerOfTwoChoices => "p2c",
    }
}

async fn run_once(
    replicas: usize,
    heterogeneous: bool,
    policy: SchedulerPolicy,
    phase: Duration,
) -> RunResult {
    let mal = ModelAbstractionLayer::new(16, Registry::new());
    let m = ModelId::new("bench", 1);
    mal.add_model_with_policy(
        m.clone(),
        BatchConfig {
            strategy: BatchStrategy::Fixed(64),
            queue_capacity: QUEUE_CAPACITY,
            pipeline_depth: 1,
            ..Default::default()
        },
        policy,
    );
    let mut counters = Vec::new();
    for r in 0..replicas {
        let per_item = if heterogeneous && r == 0 {
            Duration::from_micros(FAST_US_PER_ITEM * SLOW_FACTOR as u64)
        } else {
            Duration::from_micros(FAST_US_PER_ITEM)
        };
        let served = Arc::new(AtomicU64::new(0));
        counters.push(served.clone());
        mal.add_replica(&m, Arc::new(SimReplica { per_item, served }))
            .unwrap();
    }

    // Offered load is a fraction of the pool's *actual* aggregate
    // capacity, so the pool always has slack — but a blind 1/R share
    // still overloads the slow replica (its fair share exceeds its own
    // capacity), which is exactly the regime the scheduler exists for.
    let fast_capacity = 1_000_000.0 / FAST_US_PER_ITEM as f64;
    let aggregate_capacity = if heterogeneous {
        fast_capacity * (replicas - 1) as f64 + fast_capacity / SLOW_FACTOR as f64
    } else {
        fast_capacity * replicas as f64
    };
    let offered_qps = LOAD_FRACTION * aggregate_capacity;

    let mal2 = mal.clone();
    let m2 = m.clone();
    let report = run_open_loop_outcomes(
        ArrivalProcess::Uniform { rate: offered_qps },
        phase,
        11,
        move |seq| {
            let mal = mal2.clone();
            let m = m2.clone();
            async move {
                match mal.predict(&m, Arc::new(vec![seq as f32]), false).await {
                    Ok(_) => RequestOutcome::Ok,
                    Err(PredictError::Overloaded) => RequestOutcome::Shed,
                    Err(_) => RequestOutcome::Error,
                }
            }
        },
    )
    .await;

    let served_total: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    RunResult {
        replicas,
        mix: if heterogeneous {
            "heterogeneous".to_string()
        } else {
            "homogeneous".to_string()
        },
        policy: policy_name(policy).to_string(),
        offered_qps,
        throughput: report.throughput(),
        p50_ms: report.latency.p50() as f64 / 1_000.0,
        p99_ms: report.p99_ms(),
        shed: report.shed,
        errors: report.errors,
        replica0_share: if served_total == 0 {
            0.0
        } else {
            counters[0].load(Ordering::Relaxed) as f64 / served_total as f64
        },
    }
}

/// One §4.4.1 A/B arm: heterogeneous 2-replica fleet (replica 0 is the
/// 10× slow one) under **blind round-robin** with Poisson arrivals at
/// `AUTOTUNE_LOAD_FRACTION` of aggregate capacity. Round-robin isolates
/// what the tentpole adds — depth-aware p2c already routes around the
/// slow replica and masks the batching pathology (the headline rows
/// cover that). With `autotune` off the fleet runs Fixed(64) batching
/// and no admission: the slow replica accumulates oversized batches
/// (64 × 5ms = 320ms service) and blows the SLO for everything it
/// serves. With it on, each replica's online latency model re-derives
/// its own ceiling continuously and SLO-aware admission routes around —
/// or honestly sheds — queries that could not meet the deadline.
async fn run_autotune_arm(autotune: bool, phase: Duration) -> AutotuneArm {
    let mal = ModelAbstractionLayer::new(16, Registry::new());
    let m = ModelId::new("bench", 1);
    let slo = Duration::from_millis(AUTOTUNE_SLO_MS);
    let base = BatchConfig {
        slo,
        queue_capacity: QUEUE_CAPACITY,
        max_batch_cap: 64,
        pipeline_depth: 1,
        ..Default::default()
    };
    let cfg = if autotune {
        BatchConfig {
            strategy: BatchStrategy::Autotune { headroom: 0.1 },
            slo_admission: true,
            ..base
        }
    } else {
        BatchConfig {
            strategy: BatchStrategy::Fixed(64),
            ..base
        }
    };
    mal.add_model_with_policy(m.clone(), cfg, SchedulerPolicy::RoundRobin);
    for r in 0..2usize {
        let per_item = if r == 0 {
            Duration::from_micros(FAST_US_PER_ITEM * SLOW_FACTOR as u64)
        } else {
            Duration::from_micros(FAST_US_PER_ITEM)
        };
        let served = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, Arc::new(SimReplica { per_item, served }))
            .unwrap();
    }

    let fast_capacity = 1_000_000.0 / FAST_US_PER_ITEM as f64;
    let offered_qps = AUTOTUNE_LOAD_FRACTION * (fast_capacity + fast_capacity / SLOW_FACTOR as f64);

    let violations = Arc::new(AtomicU64::new(0));
    let drive = |count: bool| {
        let mal = mal.clone();
        let m = m.clone();
        let violations = violations.clone();
        move |seq: u64| {
            let mal = mal.clone();
            let m = m.clone();
            let violations = violations.clone();
            async move {
                let t0 = Instant::now();
                match mal.predict(&m, Arc::new(vec![seq as f32]), false).await {
                    Ok(_) => {
                        if count && t0.elapsed() > slo {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        RequestOutcome::Ok
                    }
                    Err(PredictError::Overloaded) => RequestOutcome::Shed,
                    // Anything that vanished without an honest answer.
                    Err(_) => RequestOutcome::Lost,
                }
            }
        }
    };

    // Unmeasured warmup, identical for both arms: lets the online models
    // establish and the fleet reach its steady state — the A/B compares
    // sustained behavior, not cold-start transients.
    let _ = run_open_loop_outcomes(
        ArrivalProcess::Poisson { rate: offered_qps },
        phase / 2,
        29,
        drive(false),
    )
    .await;
    let report = run_open_loop_outcomes(
        ArrivalProcess::Poisson { rate: offered_qps },
        phase,
        23,
        drive(true),
    )
    .await;

    let tunes = mal.replica_tunes(&m);
    let b_max_of = |qid: &str| {
        tunes
            .iter()
            .find(|t| t.queue_id == qid)
            .map_or(0, |t| t.b_max)
    };
    let slo_violations = violations.load(Ordering::Relaxed);
    let answered = report.completed + report.shed;
    AutotuneArm {
        autotune,
        offered_qps,
        throughput: report.throughput(),
        p50_ms: report.latency.p50() as f64 / 1_000.0,
        p99_ms: report.p99_ms(),
        shed: report.shed,
        lost: report.lost,
        errors: report.errors,
        slo_violations,
        slo_violation_rate: if answered == 0 {
            0.0
        } else {
            slo_violations as f64 / answered as f64
        },
        admission_shed: mal.admission_shed_count(&m),
        b_max_slow: b_max_of("bench:v1:0"),
        b_max_fast: b_max_of("bench:v1:1"),
    }
}

fn find<'a>(results: &'a [RunResult], replicas: usize, mix: &str, policy: &str) -> &'a RunResult {
    results
        .iter()
        .find(|r| r.replicas == replicas && r.mix == mix && r.policy == policy)
        .expect("scenario present")
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut phase_seconds = 2.0f64;
    let mut out_path = "BENCH_replica_scaling.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => phase_seconds = 0.8,
            "--seconds" => {
                i += 1;
                phase_seconds = args[i].parse().expect("--seconds <f64>");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other:?} (see --smoke/--seconds/--out)"),
        }
        i += 1;
    }
    let phase = Duration::from_secs_f64(phase_seconds);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("== replica_scaling: round-robin vs p2c, {cores} cores ==\n");
    let mut table = Table::new(&[
        "replicas",
        "mix",
        "policy",
        "offered qps",
        "throughput",
        "p99 (ms)",
        "shed",
        "slow-replica share",
    ]);
    let mut results = Vec::new();
    for &replicas in &[1usize, 2, 4] {
        for heterogeneous in [false, true] {
            if heterogeneous && replicas < 2 {
                continue; // heterogeneity needs a sibling
            }
            for policy in [
                SchedulerPolicy::RoundRobin,
                SchedulerPolicy::PowerOfTwoChoices,
            ] {
                let r = run_once(replicas, heterogeneous, policy, phase).await;
                table.row(&[
                    format!("{}", r.replicas),
                    r.mix.clone(),
                    r.policy.clone(),
                    format!("{:.0}", r.offered_qps),
                    format!("{:.0}", r.throughput),
                    format!("{:.1}", r.p99_ms),
                    format!("{}", r.shed),
                    format!("{:.0}%", r.replica0_share * 100.0),
                ]);
                results.push(r);
            }
        }
    }
    table.print();

    let rr = find(&results, 2, "heterogeneous", "rr").clone();
    let p2c = find(&results, 2, "heterogeneous", "p2c").clone();
    println!(
        "\nheterogeneous 1 fast + 1 slow (10×): p99 rr {:.1}ms vs p2c {:.1}ms · sheds rr {} vs p2c {}",
        rr.p99_ms, p2c.p99_ms, rr.shed, p2c.shed
    );

    println!(
        "\n== §4.4.1 A/B: per-replica autotune + SLO admission, hetero fleet @ {:.0}% load, slo {}ms ==\n",
        AUTOTUNE_LOAD_FRACTION * 100.0,
        AUTOTUNE_SLO_MS
    );
    let off = run_autotune_arm(false, phase).await;
    let on = run_autotune_arm(true, phase).await;
    let mut ab = Table::new(&[
        "autotune",
        "throughput",
        "p99 (ms)",
        "slo-violation rate",
        "shed",
        "lost",
        "b_max slow/fast",
    ]);
    for arm in [&off, &on] {
        ab.row(&[
            if arm.autotune { "on" } else { "off" }.to_string(),
            format!("{:.0}", arm.throughput),
            format!("{:.1}", arm.p99_ms),
            format!("{:.1}%", arm.slo_violation_rate * 100.0),
            format!("{}", arm.shed),
            format!("{}", arm.lost),
            format!("{}/{}", arm.b_max_slow, arm.b_max_fast),
        ]);
    }
    ab.print();
    println!(
        "\nautotune: p99 {:.1}ms → {:.1}ms · violations {:.1}% → {:.1}% · slow replica learned b_max {} vs fast {}",
        off.p99_ms,
        on.p99_ms,
        off.slo_violation_rate * 100.0,
        on.slo_violation_rate * 100.0,
        on.b_max_slow,
        on.b_max_fast
    );

    let report = Report {
        bench: "replica_scaling".to_string(),
        cores,
        fast_us_per_item: FAST_US_PER_ITEM,
        slow_factor: SLOW_FACTOR,
        load_fraction: LOAD_FRACTION,
        queue_capacity: QUEUE_CAPACITY,
        phase_seconds,
        results,
        hetero_p99_ms_rr: rr.p99_ms,
        hetero_p99_ms_p2c: p2c.p99_ms,
        hetero_shed_rr: rr.shed,
        hetero_shed_p2c: p2c.shed,
        autotune_slo_ms: AUTOTUNE_SLO_MS,
        autotune_load_fraction: AUTOTUNE_LOAD_FRACTION,
        autotune_off: off.clone(),
        autotune_on: on.clone(),
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back and every run must
    // have made progress.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    assert!(
        !parsed.results.is_empty() && parsed.results.iter().all(|r| r.throughput > 0.0),
        "malformed report: empty or zero-throughput runs"
    );
    assert!(
        parsed.autotune_off.throughput > 0.0 && parsed.autotune_on.throughput > 0.0,
        "malformed report: zero-throughput autotune arm"
    );

    if std::env::var("REPLICA_SCALING_ENFORCE").as_deref() == Ok("1") {
        // The acceptance gate: with 1 fast + 1 slow replica, depth-aware
        // p2c must yield a lower p99 and no more sheds than round-robin.
        let mut ok = true;
        if !(p2c.p99_ms < rr.p99_ms) {
            eprintln!(
                "FAIL: heterogeneous p2c p99 {:.1}ms not below round-robin {:.1}ms",
                p2c.p99_ms, rr.p99_ms
            );
            ok = false;
        }
        if p2c.shed > rr.shed {
            eprintln!(
                "FAIL: heterogeneous p2c shed {} exceeds round-robin {}",
                p2c.shed, rr.shed
            );
            ok = false;
        }
        // §4.4.1 gates: the autotuned arm must beat the untuned one on
        // p99 and SLO-violation rate, answer every request it accepts
        // (zero lost), and the slow replica's learned ceiling must come
        // out below the fast one's.
        if !(on.p99_ms < off.p99_ms) {
            eprintln!(
                "FAIL: autotune-on p99 {:.1}ms not below autotune-off {:.1}ms",
                on.p99_ms, off.p99_ms
            );
            ok = false;
        }
        if on.slo_violation_rate > off.slo_violation_rate {
            eprintln!(
                "FAIL: autotune-on violation rate {:.3} exceeds off {:.3}",
                on.slo_violation_rate, off.slo_violation_rate
            );
            ok = false;
        }
        if on.lost != 0 {
            eprintln!("FAIL: autotune-on lost {} requests (must be 0)", on.lost);
            ok = false;
        }
        if !(on.b_max_slow < on.b_max_fast) || on.b_max_slow == 0 {
            eprintln!(
                "FAIL: learned ceilings slow {} vs fast {} (want 0 < slow < fast)",
                on.b_max_slow, on.b_max_fast
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "enforce: ok (p2c p99 {:.1}ms < rr {:.1}ms; sheds {} <= {}; autotune p99 {:.1}ms < {:.1}ms, violations {:.1}% <= {:.1}%, lost 0, b_max {} < {})",
            p2c.p99_ms,
            rr.p99_ms,
            p2c.shed,
            rr.shed,
            on.p99_ms,
            off.p99_ms,
            on.slo_violation_rate * 100.0,
            off.slo_violation_rate * 100.0,
            on.b_max_slow,
            on.b_max_fast
        );
    }
}
