//! Nonblocking TCP over `std::net`.
//!
//! Readiness is emulated: an operation that returns `WouldBlock` parks its
//! task on the shared timer with a short backoff (20 µs doubling to 1 ms)
//! and retries when woken. This forgoes epoll (unavailable without libc)
//! but keeps every operation cancellable and adds at most ~1 ms of idle
//! latency — irrelevant for the correctness tests and acceptable for the
//! simulated-latency experiments this workspace runs.

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Retry backoff for emulated readiness, per I/O direction.
struct Backoff {
    delay_us: AtomicU64,
}

impl Backoff {
    fn new() -> Backoff {
        Backoff {
            delay_us: AtomicU64::new(20),
        }
    }

    /// Register `cx`'s waker to retry after the current backoff delay.
    fn park(&self, cx: &mut Context<'_>) {
        let d = self.delay_us.load(Ordering::Relaxed);
        self.delay_us.store((d * 2).min(1_000), Ordering::Relaxed);
        crate::time::register_waker(
            Instant::now() + Duration::from_micros(d),
            cx.waker().clone(),
        );
    }

    fn reset(&self) {
        self.delay_us.store(20, Ordering::Relaxed);
    }
}

fn poll_would_block<T>(
    result: io::Result<T>,
    backoff: &Backoff,
    cx: &mut Context<'_>,
) -> Poll<io::Result<T>> {
    match result {
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            backoff.park(cx);
            Poll::Pending
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            cx.waker().wake_by_ref();
            Poll::Pending
        }
        other => {
            backoff.reset();
            Poll::Ready(other)
        }
    }
}

/// A TCP listener, mirroring `tokio::net::TcpListener`.
pub struct TcpListener {
    inner: std::net::TcpListener,
    backoff: Backoff,
}

impl TcpListener {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener {
            inner,
            backoff: Backoff::new(),
        })
    }

    /// Accept one connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| poll_would_block(self.inner.accept(), &self.backoff, cx))
            .await
            .and_then(|(stream, addr)| Ok((TcpStream::from_std_inner(stream)?, addr)))
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// A TCP connection, mirroring `tokio::net::TcpStream`.
pub struct TcpStream {
    inner: Arc<std::net::TcpStream>,
    read_backoff: Backoff,
    write_backoff: Backoff,
}

impl TcpStream {
    fn from_std_inner(stream: std::net::TcpStream) -> io::Result<TcpStream> {
        stream.set_nonblocking(true)?;
        Ok(TcpStream {
            inner: Arc::new(stream),
            read_backoff: Backoff::new(),
            write_backoff: Backoff::new(),
        })
    }

    /// Open a connection to `addr`.
    pub async fn connect<A: ToSocketAddrs + Send + 'static>(addr: A) -> io::Result<TcpStream> {
        // std's connect blocks; run it on a dedicated thread.
        let stream = crate::task::spawn_blocking(move || std::net::TcpStream::connect(addr))
            .await
            .map_err(|e| io::Error::other(e.to_string()))??;
        TcpStream::from_std_inner(stream)
    }

    /// Disable (or enable) Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// The peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Split into independently-owned read and write halves.
    pub fn into_split(self) -> (tcp::OwnedReadHalf, tcp::OwnedWriteHalf) {
        (
            tcp::OwnedReadHalf {
                inner: Arc::clone(&self.inner),
                backoff: Backoff::new(),
            },
            tcp::OwnedWriteHalf {
                inner: self.inner,
                backoff: Backoff::new(),
            },
        )
    }
}

fn poll_read_inner(
    stream: &std::net::TcpStream,
    backoff: &Backoff,
    cx: &mut Context<'_>,
    buf: &mut ReadBuf<'_>,
) -> Poll<io::Result<()>> {
    let result = (&mut &*stream).read(buf.unfilled_mut());
    match poll_would_block(result, backoff, cx) {
        Poll::Ready(Ok(n)) => {
            buf.advance(n);
            Poll::Ready(Ok(()))
        }
        Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
        Poll::Pending => Poll::Pending,
    }
}

fn poll_write_inner(
    stream: &std::net::TcpStream,
    backoff: &Backoff,
    cx: &mut Context<'_>,
    buf: &[u8],
) -> Poll<io::Result<usize>> {
    let result = (&mut &*stream).write(buf);
    poll_would_block(result, backoff, cx)
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        poll_read_inner(&self.inner, &self.read_backoff, cx, buf)
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        poll_write_inner(&self.inner, &self.write_backoff, cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready((&mut &*self.inner).flush())
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(self.inner.shutdown(Shutdown::Write))
    }
}

/// Owned TCP stream halves, mirroring `tokio::net::tcp`.
pub mod tcp {
    use super::*;

    /// Owned read half of a [`TcpStream`].
    pub struct OwnedReadHalf {
        pub(super) inner: Arc<std::net::TcpStream>,
        pub(super) backoff: Backoff,
    }

    /// Owned write half of a [`TcpStream`].
    pub struct OwnedWriteHalf {
        pub(super) inner: Arc<std::net::TcpStream>,
        pub(super) backoff: Backoff,
    }

    impl OwnedReadHalf {
        /// The peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }
    }

    impl OwnedWriteHalf {
        /// The peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }
    }

    impl AsyncRead for OwnedReadHalf {
        fn poll_read(
            self: Pin<&mut Self>,
            cx: &mut Context<'_>,
            buf: &mut ReadBuf<'_>,
        ) -> Poll<io::Result<()>> {
            poll_read_inner(&self.inner, &self.backoff, cx, buf)
        }
    }

    impl AsyncWrite for OwnedWriteHalf {
        fn poll_write(
            self: Pin<&mut Self>,
            cx: &mut Context<'_>,
            buf: &[u8],
        ) -> Poll<io::Result<usize>> {
            poll_write_inner(&self.inner, &self.backoff, cx, buf)
        }

        fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
            Poll::Ready((&mut &*self.inner).flush())
        }

        fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
            Poll::Ready(self.inner.shutdown(Shutdown::Write))
        }
    }
}
