//! Fleet membership: self-registration, persistence, and launchers.
//!
//! The registry is the single source of truth for *who is in the fleet*:
//! every container that announced itself (over HTTP or by dialing the RPC
//! data plane) has a [`Member`] entry keyed by container name, and a
//! mirrored `config/replica/*` record in the statestore so a restarted or
//! sibling frontend re-adopts the same membership view. Expired members
//! stay behind as tombstones: a heartbeat arriving after expiry gets an
//! unambiguous 410 (re-register, don't resume), and the tombstone carries
//! the learned latency curve harvested at drain time — the warm start
//! handed back when the container returns.

use crate::abstraction::ModelAbstractionLayer;
use crate::api::{
    self, ApiError, HeartbeatReport, RegisterOutcome, ReplicaRecord, ReplicaSpec,
    ReplicaTuneRecord, ReplicaView, REPLICA_STATE_EXPIRED, REPLICA_STATE_REGISTERED,
};
use crate::batching::LatencyPrior;
use crate::types::ModelId;
use clipper_metrics::{Counter, Registry};
use clipper_rpc::server::{ContainerInfo, RpcServer, TcpContainerHandle};
use clipper_rpc::transport::BatchTransport;
use clipper_statestore::StateStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A member's position in the `Healthy → Suspect → Expired` state
/// machine driven by the health monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Heartbeats arriving on schedule.
    Healthy,
    /// Heartbeats late: deprioritized by p2c suspect-avoidance, but not
    /// yet drained — a resumed heartbeat restores `Healthy`.
    Suspect,
    /// Heartbeats stopped: the queue was gracefully drained and the
    /// member is a tombstone. Re-registration is the only way back.
    Expired,
}

impl ReplicaHealth {
    /// Wire form used in [`ReplicaView::health`].
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Suspect => "suspect",
            ReplicaHealth::Expired => "expired",
        }
    }
}

/// Timing knobs for the fleet control loop.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The heartbeat interval containers are told to report on.
    pub heartbeat_interval: Duration,
    /// Missed intervals before a member turns `Suspect`.
    pub suspect_after: u32,
    /// Missed intervals before a member is `Expired` and drained.
    pub expire_after: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            heartbeat_interval: Duration::from_millis(500),
            suspect_after: 2,
            expire_after: 4,
        }
    }
}

/// What a [`ReplicaLauncher`] produced.
pub enum Launched {
    /// An in-process transport — the frontend attaches it immediately.
    Attached(Arc<dyn BatchTransport>),
    /// An external process was started; it will dial the RPC data plane
    /// and complete its own registration.
    Dialing,
}

/// Pluggable replica factory the autoscaler (and registration path)
/// drives. A launcher serves one capability string; a replica whose
/// `capabilities` list names it can be launched/attached by it.
pub trait ReplicaLauncher: Send + Sync {
    /// The capability this launcher serves (e.g. `"local:noop"`).
    fn capability(&self) -> &str;
    /// Launch (or attach) a replica for `record`.
    fn launch(&self, record: &ReplicaRecord) -> Result<Launched, String>;
}

/// In-process launcher: a transport-factory closure under a capability
/// name. The workhorse for tests, benches, and single-process
/// deployments.
pub struct FnLauncher {
    capability: String,
    #[allow(clippy::type_complexity)]
    factory: Box<dyn Fn(&ReplicaRecord) -> Arc<dyn BatchTransport> + Send + Sync>,
}

impl FnLauncher {
    /// Wrap `factory` under `capability`.
    pub fn new<F>(capability: &str, factory: F) -> Self
    where
        F: Fn(&ReplicaRecord) -> Arc<dyn BatchTransport> + Send + Sync + 'static,
    {
        FnLauncher {
            capability: capability.to_string(),
            factory: Box::new(factory),
        }
    }
}

impl ReplicaLauncher for FnLauncher {
    fn capability(&self) -> &str {
        &self.capability
    }
    fn launch(&self, record: &ReplicaRecord) -> Result<Launched, String> {
        Ok(Launched::Attached((self.factory)(record)))
    }
}

/// Spawned-process launcher: starts an external container process that
/// dials the RPC data plane back (`CLIPPER_RPC_ADDR`, `CLIPPER_MODEL`,
/// `CLIPPER_MODEL_VERSION`, `CLIPPER_CONTAINER_NAME` in its environment)
/// and completes its own registration.
pub struct ProcessLauncher {
    capability: String,
    program: String,
    args: Vec<String>,
    rpc_addr: String,
}

impl ProcessLauncher {
    /// Launch `program args…` per replica, pointing it at `rpc_addr`.
    pub fn new(capability: &str, program: &str, args: Vec<String>, rpc_addr: &str) -> Self {
        ProcessLauncher {
            capability: capability.to_string(),
            program: program.to_string(),
            args,
            rpc_addr: rpc_addr.to_string(),
        }
    }
}

impl ReplicaLauncher for ProcessLauncher {
    fn capability(&self) -> &str {
        &self.capability
    }
    fn launch(&self, record: &ReplicaRecord) -> Result<Launched, String> {
        std::process::Command::new(&self.program)
            .args(&self.args)
            .env("CLIPPER_RPC_ADDR", &self.rpc_addr)
            .env("CLIPPER_MODEL", &record.model_name)
            .env("CLIPPER_MODEL_VERSION", record.model_version.to_string())
            .env("CLIPPER_CONTAINER_NAME", &record.container_name)
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", self.program))?;
        Ok(Launched::Dialing)
    }
}

/// Timeline entry for observability and bench assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetEvent {
    /// A container registered (first time or after deregistration).
    Registered {
        /// Container name.
        container: String,
        /// Whether a persisted tune warm-started the admission.
        warm_start: bool,
    },
    /// An expired container re-registered.
    Readmitted {
        /// Container name.
        container: String,
        /// Whether a persisted tune warm-started the re-admission.
        warm_start: bool,
    },
    /// Heartbeats went late; p2c now deprioritizes the member.
    Suspected {
        /// Container name.
        container: String,
        /// Silence observed when the transition fired, ms.
        silent_ms: u64,
    },
    /// Heartbeats stopped; the member was drained and tombstoned.
    Expired {
        /// Container name.
        container: String,
        /// Silence observed when the transition fired, ms — the
        /// detection latency the bench gates on.
        silent_ms: u64,
        /// Whether this path won the (idempotent) drain race.
        drained: bool,
    },
    /// The autoscaler launched a managed replica.
    ScaledUp {
        /// Container name of the launched replica.
        container: String,
    },
    /// The autoscaler drained and removed a managed replica.
    ScaledDown {
        /// Container name of the removed replica.
        container: String,
    },
}

/// One fleet member (keyed by container name in [`Fleet`]).
pub(crate) struct Member {
    pub(crate) model: ModelId,
    pub(crate) capabilities: Vec<String>,
    pub(crate) queue_id: Option<String>,
    pub(crate) health: ReplicaHealth,
    pub(crate) last_beat: Instant,
    /// RPC members carry their handle: the connection's own passive
    /// probing (`is_healthy`) counts as a heartbeat, so an RPC container
    /// doesn't need a parallel HTTP beat loop.
    pub(crate) transport: Option<Arc<dyn BatchTransport>>,
    /// Launched by the autoscaler (eligible for scale-down reaping).
    pub(crate) managed: bool,
    /// Monotonic admission order; scale-down reaps the newest.
    pub(crate) joined_seq: u64,
}

pub(crate) struct FleetInner {
    pub(crate) mal: Arc<ModelAbstractionLayer>,
    pub(crate) store: Arc<StateStore>,
    pub(crate) cfg: FleetConfig,
    pub(crate) members: Mutex<HashMap<String, Member>>,
    launchers: Mutex<Vec<Arc<dyn ReplicaLauncher>>>,
    rpc_addr: Mutex<Option<SocketAddr>>,
    events: Mutex<Vec<FleetEvent>>,
    next_seq: Mutex<u64>,
    /// Queues this fleet won the drain race for (expiry, deregister,
    /// scale-down). `remove_replica` is exclusive under the replica
    /// write lock, so a concurrent `drain_suspect_replicas` on the same
    /// queue id can never double-count here.
    pub(crate) drains: Counter,
    pub(crate) registrations: Counter,
    pub(crate) expiries: Counter,
}

/// The fleet manager: membership registry + health monitor + autoscaler
/// hooks over one [`ModelAbstractionLayer`]. Cheap to clone (shared
/// inner).
#[derive(Clone)]
pub struct Fleet {
    pub(crate) inner: Arc<FleetInner>,
}

impl Fleet {
    /// Build a fleet manager over `mal`, persisting membership to
    /// `store` and reporting metrics into `registry`.
    pub fn new(
        mal: Arc<ModelAbstractionLayer>,
        store: Arc<StateStore>,
        registry: &Registry,
        cfg: FleetConfig,
    ) -> Fleet {
        Fleet {
            inner: Arc::new(FleetInner {
                mal,
                store,
                cfg,
                members: Mutex::new(HashMap::new()),
                launchers: Mutex::new(Vec::new()),
                rpc_addr: Mutex::new(None),
                events: Mutex::new(Vec::new()),
                next_seq: Mutex::new(0),
                drains: registry.counter("fleet/drains"),
                registrations: registry.counter("fleet/registrations"),
                expiries: registry.counter("fleet/expiries"),
            }),
        }
    }

    /// The fleet's timing configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.inner.cfg
    }

    /// Register a launcher; replicas whose capability list names it can
    /// be attached in-process (registration) or launched (autoscaler).
    pub fn add_launcher(&self, launcher: Arc<dyn ReplicaLauncher>) {
        self.inner.launchers.lock().push(launcher);
    }

    /// The RPC data-plane address handed to registrants, once
    /// [`serve_rpc`](Self::serve_rpc) is running.
    pub fn rpc_addr(&self) -> Option<SocketAddr> {
        *self.inner.rpc_addr.lock()
    }

    /// Snapshot of the event timeline (registration, health transitions,
    /// scaling decisions) — the bench's assertion surface.
    pub fn events(&self) -> Vec<FleetEvent> {
        self.inner.events.lock().clone()
    }

    /// Queues this fleet gracefully drained (expiry/deregister/reap).
    pub fn drain_count(&self) -> u64 {
        self.inner.drains.get()
    }

    /// One member's current view, if registered (tombstones included).
    pub fn view(&self, name: &str) -> Option<ReplicaView> {
        self.inner
            .members
            .lock()
            .get(name)
            .map(|m| view_of(name, m))
    }

    /// Every member's current view, sorted by container name.
    pub fn list(&self) -> Vec<ReplicaView> {
        let mut views: Vec<ReplicaView> = self
            .inner
            .members
            .lock()
            .iter()
            .map(|(n, m)| view_of(n, m))
            .collect();
        views.sort_by(|a, b| a.container_name.cmp(&b.container_name));
        views
    }

    /// One member's health, if registered.
    pub fn health_of(&self, name: &str) -> Option<ReplicaHealth> {
        self.inner.members.lock().get(name).map(|m| m.health)
    }

    pub(crate) fn push_event(&self, e: FleetEvent) {
        self.inner.events.lock().push(e);
    }

    fn next_seq(&self) -> u64 {
        let mut seq = self.inner.next_seq.lock();
        *seq += 1;
        *seq
    }

    pub(crate) fn load_record(&self, name: &str) -> Option<ReplicaRecord> {
        let bytes = self.inner.store.get(&api::replica_key(name))?;
        serde_json::from_slice(&bytes).ok()
    }

    pub(crate) fn persist_record(&self, rec: &ReplicaRecord) {
        if let Ok(bytes) = serde_json::to_vec(rec) {
            self.inner
                .store
                .set(&api::replica_key(&rec.container_name), bytes);
        }
    }

    fn match_launcher(&self, capabilities: &[String]) -> Option<Arc<dyn ReplicaLauncher>> {
        let launchers = self.inner.launchers.lock();
        launchers
            .iter()
            .find(|l| capabilities.iter().any(|c| c == l.capability()))
            .cloned()
    }

    /// Handle `POST /api/v1/replicas`: validate the announced
    /// model/version against the directory, attach the replica (via a
    /// matching launcher, in-process) or point it at the RPC data plane,
    /// persist the registration, and admit it to the membership view.
    /// A previously-expired container is re-admitted with the latency
    /// curve harvested when it was drained (warm start).
    pub fn register(&self, spec: ReplicaSpec) -> Result<RegisterOutcome, ApiError> {
        self.register_inner(spec, false)
    }

    pub(crate) fn register_inner(
        &self,
        spec: ReplicaSpec,
        managed: bool,
    ) -> Result<RegisterOutcome, ApiError> {
        if spec.container_name.is_empty() {
            return Err(ApiError::BadRequest(
                "container_name must not be empty".into(),
            ));
        }
        let model = ModelId::new(&spec.model_name, spec.model_version);
        if !self.inner.mal.has_model(&model) {
            let name_known = self
                .inner
                .mal
                .models()
                .iter()
                .any(|m| m.name == spec.model_name);
            return Err(if name_known {
                ApiError::VersionUnknown {
                    model: spec.model_name,
                    version: spec.model_version,
                }
            } else {
                ApiError::ModelUnknown(spec.model_name)
            });
        }
        // Warm start: the tune harvested when this container last expired
        // (or was last persisted) rides back in as the queue's prior.
        let tune = self.load_record(&spec.container_name).and_then(|r| r.tune);
        let warm_start = tune.is_some();
        let prior = tune.as_ref().map(|t| LatencyPrior {
            alpha_us: t.alpha_us,
            beta_us: t.beta_us,
        });
        let record = ReplicaRecord {
            container_name: spec.container_name.clone(),
            model_name: spec.model_name.clone(),
            model_version: spec.model_version,
            capabilities: spec.capabilities.clone(),
            state: REPLICA_STATE_REGISTERED.to_string(),
            tune,
        };
        // Attach through a matching launcher; otherwise the container
        // dials the RPC data plane itself.
        let mut queue_id = None;
        if let Some(launcher) = self.match_launcher(&spec.capabilities) {
            match launcher.launch(&record).map_err(ApiError::Internal)? {
                Launched::Attached(transport) => {
                    let qid = self
                        .inner
                        .mal
                        .add_replica_with_prior(&model, transport, prior)
                        .map_err(|e| ApiError::Internal(e.to_string()))?;
                    queue_id = Some(qid);
                }
                Launched::Dialing => {}
            }
        }
        let readmitted = self.admit_member(
            &spec.container_name,
            model,
            spec.capabilities,
            queue_id.clone(),
            None,
            managed,
        );
        self.persist_record(&record);
        self.inner.registrations.inc();
        self.push_event(if readmitted {
            FleetEvent::Readmitted {
                container: spec.container_name.clone(),
                warm_start,
            }
        } else {
            FleetEvent::Registered {
                container: spec.container_name.clone(),
                warm_start,
            }
        });
        Ok(RegisterOutcome {
            container_name: spec.container_name,
            queue_id,
            rpc_addr: self.rpc_addr().map(|a| a.to_string()),
            warm_start,
            heartbeat_interval_ms: self.inner.cfg.heartbeat_interval.as_millis() as u64,
        })
    }

    /// Insert-or-replace the membership entry; returns whether this
    /// replaced an expired tombstone (a re-admission). If a *live* entry
    /// with an attached queue is replaced (container restarted faster
    /// than the monitor noticed), its old queue is drained in the
    /// background — distinct queue ids keep the drains independent.
    fn admit_member(
        &self,
        name: &str,
        model: ModelId,
        capabilities: Vec<String>,
        queue_id: Option<String>,
        transport: Option<Arc<dyn BatchTransport>>,
        managed: bool,
    ) -> bool {
        let member = Member {
            model: model.clone(),
            capabilities,
            queue_id,
            health: ReplicaHealth::Healthy,
            last_beat: Instant::now(),
            transport,
            managed,
            joined_seq: self.next_seq(),
        };
        let old = self.inner.members.lock().insert(name.to_string(), member);
        let readmitted = old
            .as_ref()
            .is_some_and(|m| m.health == ReplicaHealth::Expired);
        if let Some(old) = old {
            if old.health != ReplicaHealth::Expired {
                if let Some(old_qid) = old.queue_id {
                    let fleet = self.clone();
                    tokio::spawn(async move {
                        if let Ok(q) = fleet.inner.mal.remove_replica(&old.model, &old_qid) {
                            q.drained().await;
                            fleet.inner.drains.inc();
                        }
                    });
                }
            }
        }
        readmitted
    }

    /// Handle `POST /api/v1/replicas/{name}/heartbeat`. A beat from an
    /// expired member gets 410 (`replica_gone`): its queue is already
    /// drained, so resuming silently would serve from a ghost — it must
    /// re-register. A beat from a suspect member restores `Healthy` and
    /// clears the scheduler's suspect hint.
    pub fn heartbeat(&self, name: &str, _report: HeartbeatReport) -> Result<ReplicaView, ApiError> {
        let mut members = self.inner.members.lock();
        let Some(m) = members.get_mut(name) else {
            drop(members);
            return Err(match self.load_record(name) {
                Some(r) if r.state == REPLICA_STATE_EXPIRED => {
                    ApiError::ReplicaGone(name.to_string())
                }
                _ => ApiError::ReplicaUnknown(name.to_string()),
            });
        };
        if m.health == ReplicaHealth::Expired {
            return Err(ApiError::ReplicaGone(name.to_string()));
        }
        m.last_beat = Instant::now();
        if m.health == ReplicaHealth::Suspect {
            m.health = ReplicaHealth::Healthy;
            if let Some(qid) = &m.queue_id {
                self.inner
                    .mal
                    .set_replica_suspect_hint(&m.model, qid, false);
            }
        }
        Ok(view_of(name, m))
    }

    /// Handle `DELETE /api/v1/replicas/{name}`: graceful deregistration.
    /// The queue drains zero-drop, the membership entry and persisted
    /// record are removed — the name is immediately free to re-register.
    pub async fn deregister(&self, name: &str) -> Result<(), ApiError> {
        let member = self
            .inner
            .members
            .lock()
            .remove(name)
            .ok_or_else(|| ApiError::ReplicaUnknown(name.to_string()))?;
        if let Some(qid) = &member.queue_id {
            if let Ok(queue) = self.inner.mal.remove_replica(&member.model, qid) {
                queue.drained().await;
                self.inner.drains.inc();
            }
        }
        self.inner.store.del(&api::replica_key(name));
        Ok(())
    }

    /// Adopt a persisted registration written by another frontend (or a
    /// previous life of this one): attach via a matching launcher when
    /// possible, otherwise admit unattached — the container's own
    /// heartbeats (or the monitor's expiry) settle it. Returns whether a
    /// new member was admitted.
    pub(crate) fn adopt_record(&self, rec: ReplicaRecord) -> bool {
        if rec.state != REPLICA_STATE_REGISTERED {
            return false;
        }
        let model = ModelId::new(&rec.model_name, rec.model_version);
        if !self.inner.mal.has_model(&model) {
            return false;
        }
        if self.inner.members.lock().contains_key(&rec.container_name) {
            return false;
        }
        let prior = rec.tune.as_ref().map(|t| LatencyPrior {
            alpha_us: t.alpha_us,
            beta_us: t.beta_us,
        });
        let mut queue_id = None;
        if let Some(launcher) = self.match_launcher(&rec.capabilities) {
            if let Ok(Launched::Attached(transport)) = launcher.launch(&rec) {
                queue_id = self
                    .inner
                    .mal
                    .add_replica_with_prior(&model, transport, prior)
                    .ok();
            }
        }
        self.admit_member(
            &rec.container_name,
            model,
            rec.capabilities.clone(),
            queue_id,
            None,
            false,
        );
        true
    }

    /// Serve the RPC data plane for self-registering containers: bind,
    /// then accept `Register` frames forever, attaching each container
    /// as a fleet member (its connection's passive health probing counts
    /// as its heartbeat).
    pub async fn serve_rpc(&self, addr: &str) -> Result<SocketAddr, ApiError> {
        let mut server = RpcServer::bind(addr)
            .await
            .map_err(|e| ApiError::Internal(e.to_string()))?;
        let local = server.local_addr();
        *self.inner.rpc_addr.lock() = Some(local);
        let fleet = self.clone();
        tokio::spawn(async move {
            while let Some((info, handle)) = server.next_container().await {
                fleet.admit_rpc(info, handle);
            }
        });
        Ok(local)
    }

    /// Admit one RPC-registered container. Unknown model/version frames
    /// are dropped (the container sees its connection close on the next
    /// probe cycle) — the RPC surface has no error channel at register
    /// time.
    pub(crate) fn admit_rpc(&self, info: ContainerInfo, handle: TcpContainerHandle) {
        let model = ModelId::new(&info.model_name, info.model_version);
        if !self.inner.mal.has_model(&model) {
            return;
        }
        let interval = self.inner.cfg.heartbeat_interval;
        let grace = interval * self.inner.cfg.suspect_after.max(1);
        handle.start_heartbeats(interval, grace);
        let transport: Arc<dyn BatchTransport> = Arc::new(handle);
        let tune = self.load_record(&info.container_name).and_then(|r| r.tune);
        let warm_start = tune.is_some();
        let prior = tune.as_ref().map(|t| LatencyPrior {
            alpha_us: t.alpha_us,
            beta_us: t.beta_us,
        });
        let Ok(queue_id) = self
            .inner
            .mal
            .add_replica_with_prior(&model, transport.clone(), prior)
        else {
            return;
        };
        let readmitted = self.admit_member(
            &info.container_name,
            model,
            Vec::new(),
            Some(queue_id),
            Some(transport),
            false,
        );
        self.persist_record(&ReplicaRecord {
            container_name: info.container_name.clone(),
            model_name: info.model_name.clone(),
            model_version: info.model_version,
            capabilities: Vec::new(),
            state: REPLICA_STATE_REGISTERED.to_string(),
            tune,
        });
        self.inner.registrations.inc();
        self.push_event(if readmitted {
            FleetEvent::Readmitted {
                container: info.container_name,
                warm_start,
            }
        } else {
            FleetEvent::Registered {
                container: info.container_name,
                warm_start,
            }
        });
    }

    /// Harvest a replica's learned latency curve into its wire record
    /// form, if the model is established — the warm start persisted with
    /// the tombstone at expiry.
    pub(crate) fn harvest_tune(
        &self,
        model: &ModelId,
        queue_id: &str,
    ) -> Option<ReplicaTuneRecord> {
        self.inner
            .mal
            .replica_tunes(model)
            .iter()
            .find(|t| t.queue_id == queue_id)
            .map(ReplicaTuneRecord::from)
    }
}

pub(crate) fn view_of(name: &str, m: &Member) -> ReplicaView {
    ReplicaView {
        container_name: name.to_string(),
        model_name: m.model.name.clone(),
        model_version: m.model.version,
        health: m.health.as_str().to_string(),
        queue_id: m.queue_id.clone(),
        managed: m.managed,
    }
}
