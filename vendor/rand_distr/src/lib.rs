//! Minimal API-compatible substitute for [`rand_distr`]: the [`Normal`]
//! and [`Exp`] distributions used by the dataset generators and arrival
//! processes, over `f32` or `f64`.

use rand::distr::Distribution;
use rand::RngCore;

/// Float abstraction so [`Normal`] and [`Exp`] work for `f32` and `f64`.
pub trait Float: Copy + PartialOrd {
    /// Additive identity.
    fn zero() -> Self;
    /// Draw a uniform value in `(0, 1]` (never zero, so `ln` is finite).
    fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
    /// Multiply by the constant 2π.
    fn two_pi() -> Self;
    /// The constant -2.
    fn neg_two() -> Self;
    /// Negation.
    fn neg(self) -> Self;
}

macro_rules! impl_float {
    ($t:ty, $pi:expr) => {
        impl Float for $t {
            fn zero() -> Self {
                0.0
            }
            fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // 1 - [0,1) lies in (0, 1].
                1.0 - <$t as rand::StandardSample>::sample_standard(rng)
            }
            fn ln(self) -> Self {
                self.ln()
            }
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            fn cos(self) -> Self {
                self.cos()
            }
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            fn two_pi() -> Self {
                2.0 * $pi
            }
            fn neg_two() -> Self {
                -2.0
            }
            fn neg(self) -> Self {
                -self
            }
        }
    };
}

impl_float!(f32, std::f32::consts::PI);
impl_float!(f64, std::f64::consts::PI);

/// Normal (Gaussian) distribution with given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Error constructing a [`Normal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

impl<F: Float> Normal<F> {
    /// Build `N(mean, std_dev²)`. Fails on negative or non-finite σ.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if std_dev >= F::zero() && std_dev.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl<F: Float + std::ops::Add<Output = F> + std::ops::Mul<Output = F>> Distribution<F>
    for Normal<F>
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: z = sqrt(-2 ln u1) · cos(2π u2).
        let u1 = F::unit_open(rng);
        let u2 = F::unit_open(rng);
        let z = (F::neg_two() * u1.ln()).sqrt() * (F::two_pi() * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate λ.
#[derive(Clone, Copy, Debug)]
pub struct Exp<F> {
    lambda: F,
}

/// Error constructing an [`Exp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpError;

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rate must be finite and positive")
    }
}

impl std::error::Error for ExpError {}

impl<F: Float> Exp<F> {
    /// Build `Exp(λ)`. Fails on non-positive or non-finite λ.
    pub fn new(lambda: F) -> Result<Self, ExpError> {
        if lambda > F::zero() && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError)
        }
    }
}

impl<F: Float + std::ops::Div<Output = F>> Distribution<F> for Exp<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Inverse transform: -ln(u)/λ with u in (0, 1].
        F::unit_open(rng).ln().neg() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = Normal::new(3.0f64, 2.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(12);
        let e = Exp::new(4.0f64).unwrap();
        let mean = (0..50_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Exp::new(0.0f64).is_err());
        assert!(Exp::new(-3.0f64).is_err());
    }
}
