//! Minimal API-compatible substitute for [`parking_lot`], built on
//! `std::sync` primitives.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the tiny subset of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with the no-poisoning API (`lock()` returns the
//! guard directly, not a `Result`). Poisoning is erased by taking the inner
//! guard out of a poisoned `Result` — matching `parking_lot`'s semantics of
//! simply not tracking panics.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Attempt to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempt to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
