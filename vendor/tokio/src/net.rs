//! Nonblocking TCP over `std::net`.
//!
//! Readiness comes from the epoll reactor ([`crate::reactor`]) on Linux
//! x86_64/aarch64: every socket registers edge-triggered interest at
//! creation, an operation that returns `WouldBlock` parks its waker in
//! the per-fd slot, and the kernel wakes it exactly when the fd becomes
//! ready — no timers, no retry quanta, no idle CPU.
//!
//! On other hosts (or if reactor setup fails) readiness falls back to
//! the original emulation: park on the shared timer with a short backoff
//! (20 µs doubling to 1 ms) and retry when woken. The fallback can also
//! be forced at runtime — per socket, at creation time — via
//! [`set_io_mode`] or `TOKIO_IO_BACKOFF=1`, which is how the
//! `rpc_latency` bench measures the reactor against the emulation in one
//! process.

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

#[cfg(vendored_reactor)]
use crate::reactor::{Direction, Reactor, Registration};

/// How sockets created from now on wait for readiness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// Epoll reactor wakeups (default where supported).
    Reactor,
    /// Timer-backoff readiness emulation (the portability fallback).
    Backoff,
}

/// 0 = unset, 1 = reactor, 2 = backoff.
static IO_MODE: AtomicU8 = AtomicU8::new(0);

/// Select the readiness mechanism for sockets created after this call
/// (existing sockets keep the mechanism they were created with). On
/// targets without the reactor this is a no-op: sockets always use the
/// backoff. Test/bench support — not part of real tokio's API.
pub fn set_io_mode(mode: IoMode) {
    IO_MODE.store(
        match mode {
            IoMode::Reactor => 1,
            IoMode::Backoff => 2,
        },
        Ordering::Relaxed,
    );
}

/// The readiness mechanism sockets created now would use.
pub fn io_mode() -> IoMode {
    match IO_MODE.load(Ordering::Relaxed) {
        1 => reactor_available_mode(),
        2 => IoMode::Backoff,
        _ => {
            // Latched once: the env knob cannot meaningfully change
            // mid-process, and this runs on every socket creation
            // (one per accepted connection on the frontend).
            static ENV_BACKOFF: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
            let forced = *ENV_BACKOFF
                .get_or_init(|| std::env::var_os("TOKIO_IO_BACKOFF").is_some_and(|v| v == "1"));
            if forced {
                IoMode::Backoff
            } else {
                reactor_available_mode()
            }
        }
    }
}

#[cfg(vendored_reactor)]
fn reactor_available_mode() -> IoMode {
    if Reactor::get().is_some() {
        IoMode::Reactor
    } else {
        IoMode::Backoff
    }
}

#[cfg(not(vendored_reactor))]
fn reactor_available_mode() -> IoMode {
    IoMode::Backoff
}

/// Retry backoff for emulated readiness, per I/O direction.
struct Backoff {
    delay_us: AtomicU64,
}

impl Backoff {
    fn new() -> Backoff {
        Backoff {
            delay_us: AtomicU64::new(20),
        }
    }

    /// Register `cx`'s waker to retry after the current backoff delay.
    fn park(&self, cx: &mut Context<'_>) {
        let d = self.delay_us.load(Ordering::Relaxed);
        self.delay_us.store((d * 2).min(1_000), Ordering::Relaxed);
        crate::time::register_waker(
            Instant::now() + Duration::from_micros(d),
            cx.waker().clone(),
        );
    }

    fn reset(&self) {
        self.delay_us.store(20, Ordering::Relaxed);
    }
}

/// A socket's readiness source, fixed at creation.
///
/// The reactor registration is shared (`Arc`) between split halves — one
/// epoll interest per fd — while backoff state is per-direction and
/// per-half. Declared **before** the owning socket's fd holder in every
/// struct below so deregistration (its `Drop`) runs before the fd
/// closes.
enum Driver {
    #[cfg(vendored_reactor)]
    Reactor(Arc<Registration>),
    Backoff {
        read: Backoff,
        write: Backoff,
    },
}

impl Driver {
    /// Build the driver for a freshly created nonblocking socket.
    #[cfg(vendored_reactor)]
    fn for_fd(fd: std::os::fd::RawFd) -> Driver {
        if io_mode() == IoMode::Reactor {
            if let Some(reactor) = Reactor::get() {
                if let Ok(reg) = reactor.register(fd) {
                    return Driver::Reactor(Arc::new(reg));
                }
            }
        }
        Driver::backoff()
    }

    #[cfg(not(vendored_reactor))]
    fn for_fd(_fd: i32) -> Driver {
        Driver::backoff()
    }

    fn backoff() -> Driver {
        Driver::Backoff {
            read: Backoff::new(),
            write: Backoff::new(),
        }
    }

    /// A second handle onto the same fd (for split halves): shares the
    /// reactor registration, or gets fresh backoff state.
    fn split_clone(&self) -> Driver {
        match self {
            #[cfg(vendored_reactor)]
            Driver::Reactor(reg) => Driver::Reactor(Arc::clone(reg)),
            Driver::Backoff { .. } => Driver::backoff(),
        }
    }
}

/// Whether this socket op direction maps to read- or write-readiness.
#[derive(Clone, Copy)]
enum Dir {
    Read,
    Write,
}

/// Drive one nonblocking syscall to completion against the readiness
/// source: retry on a consumed readiness edge, park on `WouldBlock`,
/// pass everything else through.
fn poll_io<T>(
    driver: &Driver,
    dir: Dir,
    cx: &mut Context<'_>,
    mut op: impl FnMut() -> io::Result<T>,
) -> Poll<io::Result<T>> {
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => match driver {
                #[cfg(vendored_reactor)]
                Driver::Reactor(reg) => {
                    let d = match dir {
                        Dir::Read => Direction::Read,
                        Dir::Write => Direction::Write,
                    };
                    // A consumed edge means readiness may have arrived
                    // between the syscall and the poll — retry once more;
                    // a pending poll parked the waker.
                    match reg.poll_ready(d, cx) {
                        Poll::Ready(()) => continue,
                        Poll::Pending => return Poll::Pending,
                    }
                }
                Driver::Backoff { read, write } => {
                    match dir {
                        Dir::Read => read.park(cx),
                        Dir::Write => write.park(cx),
                    }
                    return Poll::Pending;
                }
            },
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                return Poll::Pending;
            }
            other => {
                if let Driver::Backoff { read, write } = driver {
                    match dir {
                        Dir::Read => read.reset(),
                        Dir::Write => write.reset(),
                    }
                }
                return Poll::Ready(other);
            }
        }
    }
}

#[cfg(vendored_reactor)]
fn driver_for<S: std::os::fd::AsRawFd>(socket: &S) -> Driver {
    Driver::for_fd(socket.as_raw_fd())
}

#[cfg(not(vendored_reactor))]
fn driver_for<S>(_socket: &S) -> Driver {
    Driver::backoff()
}

/// A TCP listener, mirroring `tokio::net::TcpListener`.
pub struct TcpListener {
    // Field order: driver (epoll deregistration) before the fd owner.
    driver: Driver,
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let driver = driver_for(&inner);
        Ok(TcpListener { driver, inner })
    }

    /// Accept one connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| poll_io(&self.driver, Dir::Read, cx, || self.inner.accept()))
            .await
            .and_then(|(stream, addr)| Ok((TcpStream::from_std_inner(stream)?, addr)))
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// A TCP connection, mirroring `tokio::net::TcpStream`.
pub struct TcpStream {
    // Field order: driver (epoll deregistration) before the fd owner.
    driver: Driver,
    inner: Arc<std::net::TcpStream>,
}

impl TcpStream {
    fn from_std_inner(stream: std::net::TcpStream) -> io::Result<TcpStream> {
        stream.set_nonblocking(true)?;
        let driver = driver_for(&stream);
        Ok(TcpStream {
            driver,
            inner: Arc::new(stream),
        })
    }

    /// Open a connection to `addr`.
    pub async fn connect<A: ToSocketAddrs + Send + 'static>(addr: A) -> io::Result<TcpStream> {
        // std's connect blocks; run it on a dedicated thread.
        let stream = crate::task::spawn_blocking(move || std::net::TcpStream::connect(addr))
            .await
            .map_err(|e| io::Error::other(e.to_string()))??;
        TcpStream::from_std_inner(stream)
    }

    /// Disable (or enable) Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// The peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Split into independently-owned read and write halves. Both halves
    /// share the fd's single reactor registration; the epoll interest is
    /// released when the last half drops.
    pub fn into_split(self) -> (tcp::OwnedReadHalf, tcp::OwnedWriteHalf) {
        let read_driver = self.driver.split_clone();
        (
            tcp::OwnedReadHalf {
                driver: read_driver,
                inner: Arc::clone(&self.inner),
            },
            tcp::OwnedWriteHalf {
                driver: self.driver,
                inner: self.inner,
            },
        )
    }
}

fn poll_read_inner(
    stream: &std::net::TcpStream,
    driver: &Driver,
    cx: &mut Context<'_>,
    buf: &mut ReadBuf<'_>,
) -> Poll<io::Result<()>> {
    match poll_io(driver, Dir::Read, cx, || {
        (&mut &*stream).read(buf.unfilled_mut())
    }) {
        Poll::Ready(Ok(n)) => {
            buf.advance(n);
            Poll::Ready(Ok(()))
        }
        Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
        Poll::Pending => Poll::Pending,
    }
}

/// Completed plain-write ops on TCP sockets, process-wide.
static TCP_WRITE_OPS: AtomicU64 = AtomicU64::new(0);
/// Completed vectored-write ops on TCP sockets, process-wide.
static TCP_WRITEV_OPS: AtomicU64 = AtomicU64::new(0);

/// `(plain_writes, vectored_writes)` completed on TCP sockets since
/// process start. Each count is one successful kernel write submission
/// (a parked-and-retried `WouldBlock` is not counted), so the delta
/// across a request is exactly the syscalls spent on its responses.
/// Bench/test observability — not part of real tokio's API.
pub fn tcp_write_op_counts() -> (u64, u64) {
    (
        TCP_WRITE_OPS.load(Ordering::Relaxed),
        TCP_WRITEV_OPS.load(Ordering::Relaxed),
    )
}

fn poll_write_inner(
    stream: &std::net::TcpStream,
    driver: &Driver,
    cx: &mut Context<'_>,
    buf: &[u8],
) -> Poll<io::Result<usize>> {
    let res = poll_io(driver, Dir::Write, cx, || (&mut &*stream).write(buf));
    if let Poll::Ready(Ok(_)) = res {
        TCP_WRITE_OPS.fetch_add(1, Ordering::Relaxed);
    }
    res
}

/// One gather-write syscall: raw `writev(2)` on reactor-capable targets
/// (vendor policy — no libc), std's vectored write elsewhere.
#[cfg(vendored_reactor)]
fn tcp_write_vectored(stream: &std::net::TcpStream, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    use std::os::fd::AsRawFd;
    crate::sys::writev(stream.as_raw_fd(), bufs)
}

#[cfg(not(vendored_reactor))]
fn tcp_write_vectored(stream: &std::net::TcpStream, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    (&mut &*stream).write_vectored(bufs)
}

fn poll_write_vectored_inner(
    stream: &std::net::TcpStream,
    driver: &Driver,
    cx: &mut Context<'_>,
    bufs: &[io::IoSlice<'_>],
) -> Poll<io::Result<usize>> {
    let res = poll_io(driver, Dir::Write, cx, || tcp_write_vectored(stream, bufs));
    if let Poll::Ready(Ok(_)) = res {
        TCP_WRITEV_OPS.fetch_add(1, Ordering::Relaxed);
    }
    res
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        poll_read_inner(&self.inner, &self.driver, cx, buf)
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        poll_write_inner(&self.inner, &self.driver, cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready((&mut &*self.inner).flush())
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(self.inner.shutdown(Shutdown::Write))
    }

    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        poll_write_vectored_inner(&self.inner, &self.driver, cx, bufs)
    }
}

/// Owned TCP stream halves, mirroring `tokio::net::tcp`.
pub mod tcp {
    use super::*;

    /// Owned read half of a [`TcpStream`].
    pub struct OwnedReadHalf {
        // Field order: driver (epoll deregistration) before the fd owner.
        pub(super) driver: Driver,
        pub(super) inner: Arc<std::net::TcpStream>,
    }

    /// Owned write half of a [`TcpStream`].
    pub struct OwnedWriteHalf {
        // Field order: driver (epoll deregistration) before the fd owner.
        pub(super) driver: Driver,
        pub(super) inner: Arc<std::net::TcpStream>,
    }

    impl OwnedReadHalf {
        /// The peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }
    }

    impl OwnedWriteHalf {
        /// The peer address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }
    }

    impl AsyncRead for OwnedReadHalf {
        fn poll_read(
            self: Pin<&mut Self>,
            cx: &mut Context<'_>,
            buf: &mut ReadBuf<'_>,
        ) -> Poll<io::Result<()>> {
            poll_read_inner(&self.inner, &self.driver, cx, buf)
        }
    }

    impl AsyncWrite for OwnedWriteHalf {
        fn poll_write(
            self: Pin<&mut Self>,
            cx: &mut Context<'_>,
            buf: &[u8],
        ) -> Poll<io::Result<usize>> {
            poll_write_inner(&self.inner, &self.driver, cx, buf)
        }

        fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
            Poll::Ready((&mut &*self.inner).flush())
        }

        fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
            Poll::Ready(self.inner.shutdown(Shutdown::Write))
        }

        fn poll_write_vectored(
            self: Pin<&mut Self>,
            cx: &mut Context<'_>,
            bufs: &[io::IoSlice<'_>],
        ) -> Poll<io::Result<usize>> {
            poll_write_vectored_inner(&self.inner, &self.driver, cx, bufs)
        }
    }
}
