//! Adaptive batching (§4.3).
//!
//! Each model-container replica gets its own batching queue and its own
//! controller that learns the largest batch size whose evaluation latency
//! stays inside the application's SLO:
//!
//! - [`AimdController`] — the paper's default: additive increase, gentle
//!   10% multiplicative backoff on SLO violation (§4.3.1);
//! - [`QuantileController`] — the alternative the paper evaluates: online
//!   quantile regression estimating P99 latency as a linear function of
//!   batch size (pinball-loss SGD), inverted against the SLO;
//! - fixed-size and no-batching strategies for baselines (Figure 4).
//!
//! Delayed batching (§4.3.2) is a queue-level knob
//! ([`queue::QueueConfig::batch_wait_timeout`]): under moderate load the
//! dispatcher briefly waits for more queries before sending an under-full
//! batch, trading a bounded delay for amortized fixed costs — the Nagle's
//! algorithm analogy.
//!
//! Failure recovery is layered on the same queues: each replica carries a
//! per-replica circuit breaker ([`breaker::CircuitBreaker`]), retryable
//! batch failures redispatch still-within-budget queries onto a sibling
//! replica through [`queue::QueueHooks`], and an opt-in hedging knob
//! ([`queue::QueueConfig::hedge`]) races a straggling batch against a
//! second replica.

pub mod aimd;
pub mod autotune;
pub mod breaker;
pub mod latency_model;
pub mod quantile;
pub mod queue;

pub use aimd::AimdController;
pub use autotune::AutotuneController;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use latency_model::{LatencyModel, LatencyPrior, ReplicaTune};
pub use quantile::QuantileController;
pub use queue::{
    spawn_replica_queue, spawn_replica_queue_with_hooks, HedgeConfig, QueueConfig, QueueHooks,
    QueueItem, QueueMetrics, QueueState, ReplicaQueue, ReplySink, UpstreamKind,
};

use std::sync::Arc;
use std::time::Duration;

/// Strategy configuration for a replica's batching controller.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchStrategy {
    /// Additive-increase / multiplicative-decrease (the default).
    Aimd {
        /// Additive step per successful full batch.
        step: f64,
        /// Multiplicative backoff factor on SLO violation (paper: 0.9).
        backoff: f64,
    },
    /// Online P99 quantile regression.
    QuantileRegression,
    /// Static maximum batch size (TensorFlow-Serving style).
    Fixed(usize),
    /// Every query is its own batch (the Figure-4 baseline).
    NoBatching,
    /// Model-driven ceiling from the replica's online latency model
    /// (§4.4.1): `b_max = largest b with α + β·b ≤ SLO·(1 − headroom)`,
    /// with AIMD cold-start fallback until the model is established.
    Autotune {
        /// Fraction of the SLO held back as jitter headroom (e.g. 0.1).
        headroom: f64,
    },
}

impl Default for BatchStrategy {
    fn default() -> Self {
        BatchStrategy::Aimd {
            step: 2.0,
            backoff: 0.9,
        }
    }
}

impl BatchStrategy {
    /// Instantiate the controller for this strategy under `slo`. `model`
    /// is the replica's shared online latency model; only `Autotune`
    /// reads it, but every queue maintains one.
    pub fn build(
        &self,
        slo: Duration,
        cap: usize,
        model: &Arc<LatencyModel>,
    ) -> Box<dyn BatchController> {
        match *self {
            BatchStrategy::Aimd { step, backoff } => {
                Box::new(AimdController::new(slo, step, backoff, cap))
            }
            BatchStrategy::QuantileRegression => Box::new(QuantileController::new(slo, cap)),
            BatchStrategy::Fixed(n) => Box::new(FixedController(n.clamp(1, cap))),
            BatchStrategy::NoBatching => Box::new(FixedController(1)),
            BatchStrategy::Autotune { headroom } => {
                Box::new(AutotuneController::new(slo, headroom, model.clone(), cap))
            }
        }
    }
}

/// A batching controller: proposes the current maximum batch size and
/// learns from observed `(batch, latency)` outcomes.
pub trait BatchController: Send {
    /// Current maximum batch size (≥ 1).
    fn max_batch(&self) -> usize;
    /// Record one completed batch evaluation.
    fn record(&mut self, batch_size: usize, latency: Duration);
    /// Controller name for metrics/reports.
    fn name(&self) -> &'static str;
}

/// Static controller used for `Fixed` and `NoBatching`.
struct FixedController(usize);

impl BatchController for FixedController {
    fn max_batch(&self) -> usize {
        self.0
    }
    fn record(&mut self, _batch_size: usize, _latency: Duration) {}
    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Arc<LatencyModel> {
        Arc::new(LatencyModel::new())
    }

    #[test]
    fn strategy_builds_matching_controller() {
        let slo = Duration::from_millis(20);
        assert_eq!(
            BatchStrategy::default().build(slo, 4096, &model()).name(),
            "aimd"
        );
        assert_eq!(
            BatchStrategy::QuantileRegression
                .build(slo, 4096, &model())
                .name(),
            "quantile"
        );
        assert_eq!(
            BatchStrategy::Fixed(64)
                .build(slo, 4096, &model())
                .max_batch(),
            64
        );
        assert_eq!(
            BatchStrategy::NoBatching
                .build(slo, 4096, &model())
                .max_batch(),
            1
        );
        assert_eq!(
            BatchStrategy::Autotune { headroom: 0.1 }
                .build(slo, 4096, &model())
                .name(),
            "autotune"
        );
    }

    #[test]
    fn fixed_is_clamped_to_cap() {
        let c = BatchStrategy::Fixed(10_000).build(Duration::from_millis(20), 256, &model());
        assert_eq!(c.max_batch(), 256);
    }

    #[test]
    fn fixed_ignores_feedback() {
        let mut c = BatchStrategy::Fixed(8).build(Duration::from_millis(20), 4096, &model());
        c.record(8, Duration::from_secs(10));
        assert_eq!(c.max_batch(), 8);
    }
}
