//! Container-side RPC client.
//!
//! A model container connects to Clipper, registers, and then serves batch
//! prediction requests until shutdown. Batches are executed **serially** in
//! arrival order on a blocking thread — a container is a serially-shared
//! resource (one model, one device), which is exactly the property the
//! adaptive batching layer (§4.3) is tuned against. Time spent waiting for
//! the worker is reported as `queue_us` so the Figure-11 decomposition can
//! separate queueing from compute.

use crate::codec::{FrameReader, FrameWriter};
use crate::error::RpcError;
use crate::message::{Message, PredictReply};
use crate::transport::Input;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;
use tokio::net::TcpStream;
use tokio::sync::mpsc;

/// Computes predictions for batches inside a container.
///
/// `handle_batch` runs on a blocking thread; it should fill in
/// [`PredictReply::compute_us`] with its own measure of model time (the
/// serving loop fills in `queue_us`).
pub trait BatchHandler: Send + Sync + 'static {
    /// Evaluate one batch of shared feature vectors. `Err` strings become
    /// [`RpcError::Remote`] on the Clipper side and fail only that batch,
    /// not the connection.
    fn handle_batch(&self, inputs: Vec<Input>) -> Result<PredictReply, String>;
}

impl<F> BatchHandler for F
where
    F: Fn(Vec<Input>) -> Result<PredictReply, String> + Send + Sync + 'static,
{
    fn handle_batch(&self, inputs: Vec<Input>) -> Result<PredictReply, String> {
        self(inputs)
    }
}

/// Registration parameters for [`serve_container`].
#[derive(Clone, Debug)]
pub struct ContainerClientConfig {
    /// Unique container instance name.
    pub container_name: String,
    /// Model name to register under.
    pub model_name: String,
    /// Model version.
    pub model_version: u32,
}

/// Connect to Clipper at `addr`, register, and serve batches until the
/// connection closes or a `Shutdown` frame arrives.
pub async fn serve_container(
    addr: SocketAddr,
    cfg: ContainerClientConfig,
    handler: Arc<dyn BatchHandler>,
) -> Result<(), RpcError> {
    let stream = TcpStream::connect(addr).await?;
    stream.set_nodelay(true)?;
    let (rd, wr) = stream.into_split();
    let mut rd = FrameReader::new(rd);
    let mut wr = FrameWriter::new(wr);

    wr.send(
        &Message::Register {
            container_name: cfg.container_name.clone(),
            model_name: cfg.model_name.clone(),
            model_version: cfg.model_version,
        },
        0,
    )
    .await?;
    match rd.next().await? {
        (_, Message::RegisterAck) => {}
        (_, other) => {
            return Err(RpcError::Protocol(format!(
                "expected RegisterAck, got {other:?}"
            )));
        }
    }

    // Outbound responses funnel through a writer task. Everything queued
    // while a flush was in progress coalesces into the next write.
    let (out_tx, mut out_rx) = mpsc::unbounded_channel::<(u64, Message)>();
    let writer = tokio::spawn(async move {
        while let Some((id, msg)) = out_rx.recv().await {
            wr.queue(&msg, id);
            while wr.pending() < 256 * 1024 {
                match out_rx.try_recv() {
                    Ok((id, msg)) => wr.queue(&msg, id),
                    Err(_) => break,
                }
            }
            if wr.flush().await.is_err() {
                break;
            }
        }
    });

    // Worker task: executes batches serially in arrival order.
    let (work_tx, mut work_rx) = mpsc::unbounded_channel::<(u64, Vec<Input>, Instant)>();
    let out_tx_worker = out_tx.clone();
    let worker = tokio::spawn(async move {
        while let Some((id, inputs, enqueued)) = work_rx.recv().await {
            let queue_us = enqueued.elapsed().as_micros() as u64;
            let h = handler.clone();
            let result = tokio::task::spawn_blocking(move || h.handle_batch(inputs)).await;
            let msg = match result {
                Ok(Ok(mut reply)) => {
                    reply.queue_us = queue_us;
                    Message::PredictResponse(reply)
                }
                Ok(Err(e)) => Message::Error { message: e },
                Err(join_err) => Message::Error {
                    message: format!("handler panicked: {join_err}"),
                },
            };
            if out_tx_worker.send((id, msg)).is_err() {
                break;
            }
        }
    });

    // Reader loop.
    let result = loop {
        match rd.next().await {
            Ok((id, Message::PredictRequest { inputs })) => {
                if work_tx.send((id, inputs, Instant::now())).is_err() {
                    break Ok(());
                }
            }
            Ok((id, Message::Heartbeat)) => {
                let _ = out_tx.send((id, Message::HeartbeatAck));
            }
            Ok((_, Message::HeartbeatAck)) => {}
            Ok((_, Message::Shutdown)) => break Ok(()),
            Ok((_, other)) => {
                break Err(RpcError::Protocol(format!("unexpected {other:?}")));
            }
            Err(RpcError::ConnectionClosed) => break Ok(()),
            Err(e) => break Err(e),
        }
    };

    drop(work_tx);
    let _ = worker.await;
    writer.abort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireOutput;
    use crate::server::RpcServer;

    #[tokio::test]
    async fn handler_errors_fail_only_that_batch() {
        let mut server = RpcServer::bind("127.0.0.1:0").await.unwrap();
        let addr = server.local_addr();
        let cfg = ContainerClientConfig {
            container_name: "c".into(),
            model_name: "flaky".into(),
            model_version: 1,
        };
        tokio::spawn(async move {
            let handler = |inputs: Vec<Input>| -> Result<PredictReply, String> {
                if inputs.len() == 13 {
                    Err("unlucky batch".into())
                } else {
                    Ok(PredictReply {
                        outputs: vec![WireOutput::Class(0); inputs.len()],
                        queue_us: 0,
                        compute_us: 1,
                    })
                }
            };
            let _ = serve_container(addr, cfg, Arc::new(handler)).await;
        });
        let (_, handle) = server.next_container().await.unwrap();
        use crate::transport::BatchTransport;

        let err = handle
            .predict_batch(&crate::transport::as_inputs(vec![vec![0.0]; 13]))
            .await
            .unwrap_err();
        assert!(matches!(err, RpcError::Remote(ref m) if m.contains("unlucky")));

        // The connection survives: the next batch succeeds.
        let ok = handle
            .predict_batch(&crate::transport::as_inputs(vec![vec![0.0]; 2]))
            .await
            .unwrap();
        assert_eq!(ok.outputs.len(), 2);
    }

    #[tokio::test]
    async fn queue_time_is_reported() {
        let mut server = RpcServer::bind("127.0.0.1:0").await.unwrap();
        let addr = server.local_addr();
        let cfg = ContainerClientConfig {
            container_name: "c".into(),
            model_name: "slow".into(),
            model_version: 1,
        };
        tokio::spawn(async move {
            let handler = |inputs: Vec<Input>| -> Result<PredictReply, String> {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 30_000,
                })
            };
            let _ = serve_container(addr, cfg, Arc::new(handler)).await;
        });
        let (_, handle) = server.next_container().await.unwrap();
        use crate::transport::BatchTransport;
        let handle = Arc::new(handle);

        // Send two batches back to back: the second must queue behind the
        // first (serial container), so its queue_us reflects the wait.
        let h1 = handle.clone();
        let first =
            tokio::spawn(async move { h1.predict_batch(&[std::sync::Arc::new(vec![0.0])]).await });
        tokio::time::sleep(std::time::Duration::from_millis(5)).await;
        let second = handle
            .predict_batch(&[std::sync::Arc::new(vec![0.0])])
            .await
            .unwrap();
        first.await.unwrap().unwrap();
        assert!(
            second.queue_us >= 10_000,
            "second batch should have queued ≥10ms, got {}µs",
            second.queue_us
        );
    }
}
