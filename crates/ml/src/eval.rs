//! Loss functions and evaluation helpers.
//!
//! The selection layer consumes losses in `[0, 1]` (the Exp3/Exp4 contract
//! from §5.1): zero-one loss for classification, phoneme error rate for
//! speech, top-k for ImageNet-style tasks.

use crate::datasets::Example;
use crate::linalg::top_k;
use crate::models::{Label, Model};

/// Zero-one loss: 0.0 if correct, 1.0 otherwise.
pub fn zero_one_loss(truth: Label, pred: Label) -> f64 {
    if truth == pred {
        0.0
    } else {
        1.0
    }
}

/// Fraction of examples a model classifies correctly.
pub fn accuracy<M: Model + ?Sized>(model: &M, examples: &[Example]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let correct = examples
        .iter()
        .filter(|e| model.predict(&e.x) == e.y)
        .count();
    correct as f64 / examples.len() as f64
}

/// Fraction of examples whose true label appears in the model's top-k
/// scores (the ImageNet top-5 metric from Figure 7).
pub fn top_k_accuracy<M: Model + ?Sized>(model: &M, examples: &[Example], k: usize) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let correct = examples
        .iter()
        .filter(|e| {
            let s = model.scores(&e.x);
            top_k(&s, k).contains(&(e.y as usize))
        })
        .count();
    correct as f64 / examples.len() as f64
}

/// Error rate between two label sequences of equal length (per-position
/// mismatches / length) — the speech "fraction of the transcription wrong"
/// loss from §5.1. Sequences of different lengths count the length gap as
/// errors.
pub fn sequence_error_rate(truth: &[Label], pred: &[Label]) -> f64 {
    if truth.is_empty() && pred.is_empty() {
        return 0.0;
    }
    let len = truth.len().max(pred.len());
    let mismatches = truth
        .iter()
        .zip(pred.iter())
        .filter(|(t, p)| t != p)
        .count()
        + truth.len().abs_diff(pred.len());
    mismatches as f64 / len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::NoOpModel;

    #[test]
    fn zero_one_loss_is_binary() {
        assert_eq!(zero_one_loss(3, 3), 0.0);
        assert_eq!(zero_one_loss(3, 4), 1.0);
    }

    #[test]
    fn accuracy_of_noop_on_class_zero() {
        let m = NoOpModel::new(2);
        let examples = vec![
            Example { x: vec![0.0], y: 0 },
            Example { x: vec![0.0], y: 1 },
            Example { x: vec![0.0], y: 0 },
        ];
        assert!((accuracy(&m, &examples) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&m, &[]), 0.0);
    }

    #[test]
    fn top_k_is_at_least_top_1() {
        let m = NoOpModel::new(5);
        let examples = vec![
            Example { x: vec![0.0], y: 0 },
            Example { x: vec![0.0], y: 4 },
        ];
        let t1 = top_k_accuracy(&m, &examples, 1);
        let t5 = top_k_accuracy(&m, &examples, 5);
        assert!(t5 >= t1);
        assert_eq!(t5, 1.0); // all 5 classes are in the top-5
    }

    #[test]
    fn sequence_error_rate_basics() {
        assert_eq!(sequence_error_rate(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(sequence_error_rate(&[1, 2, 3], &[1, 0, 3]), 1.0 / 3.0);
        assert_eq!(sequence_error_rate(&[], &[]), 0.0);
        // Length mismatch counts missing positions as errors.
        assert_eq!(sequence_error_rate(&[1, 2], &[1, 2, 3, 4]), 0.5);
    }
}
