//! RPC latency benchmark — the reactor entry in the repo's bench
//! trajectory (`BENCH_rpc_latency.json`).
//!
//! Measures round-trip latency on the two readiness mechanisms of the
//! vendored runtime:
//!
//! - `reactor` — the epoll reactor (PR 5): a blocked socket op is woken
//!   exactly when the kernel reports readiness;
//! - `backoff` — the timer-retry emulation (the pre-reactor behavior and
//!   the non-Linux fallback): every `WouldBlock` parks 20 µs → 1 ms on
//!   the shared timer and retries blind.
//!
//! Three closed-loop measurements per mode, over real localhost TCP:
//!
//! - `echo` — 64-byte echo ping-pong (the raw socket wakeup path);
//! - `predict1` / `predict8` — clipper-rpc `predict_batch` of batch 1
//!   and 8 against a No-Op container over the real RPC server/client
//!   (frame codec, oneshot completion, writer task — the paper's
//!   Figure 3d overhead path);
//! - `http_predict` — a full HTTP frontend round trip (keep-alive POST
//!   predict against an in-process echo transport: head parse, routing,
//!   JSON body in and out — the wire-speed-frontier path).
//!
//! The report also carries `baseline_reactor_p50_us`: the reactor-mode
//! p50s recorded on this host class immediately **before** the
//! wire-speed data-plane rework (buffer reuse, writev coalescing,
//! zero-alloc routing), so before/after is visible in one file.
//!
//! The reactor phase also measures `idle_timer_registrations`: with a
//! blocked accept parked and no traffic for a quiet window, the timer
//! heap must see **zero** new registrations (the backoff emulation would
//! re-arm ~1000/s). The reactor phase runs first so no leaked
//! backoff-mode socket can pollute that window.
//!
//! Flags: `--smoke` (short phases for CI), `--seconds <f64>`,
//! `--out <path>` (default `BENCH_rpc_latency.json`). With
//! `RPC_LATENCY_ENFORCE=1` the binary exits non-zero if the emitted JSON
//! fails to parse back, the reactor burned timer slots while idle, or
//! echo p50 did not improve ≥ 2× over the backoff fallback (the ISSUE-5
//! acceptance gate; skipped with a notice on hosts without the reactor).

use clipper_metrics::Histogram;
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::BatchTransport;
use clipper_rpc::{serve_container, ContainerClientConfig, RpcServer};
use clipper_workload::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{IoMode, TcpListener, TcpStream};

/// Echo message size: a small-RPC-sized payload.
const MSG_BYTES: usize = 64;

#[derive(Clone, Serialize, Deserialize)]
struct RttStats {
    iters: u64,
    mean_us: f64,
    p50_us: u64,
    p99_us: u64,
}

#[derive(Clone, Serialize, Deserialize)]
struct ModeResult {
    mode: String,
    echo: RttStats,
    predict1: RttStats,
    predict8: RttStats,
    http_predict: RttStats,
    /// Timer-heap registrations observed during the idle window (reactor
    /// phase only; the acceptance gate requires 0).
    #[serde(default)]
    idle_timer_registrations: Option<u64>,
    #[serde(default)]
    idle_window_ms: Option<u64>,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    phase_seconds: f64,
    msg_bytes: u64,
    reactor_active: bool,
    modes: Vec<ModeResult>,
    /// Headline: backoff echo p50 / reactor echo p50.
    echo_p50_speedup: f64,
    predict1_p50_speedup: f64,
    /// Pre-rework reactor p50s (before-rows for the wire-speed PR).
    baseline_reactor_p50_us: Vec<BaselineRow>,
}

#[derive(Serialize, Deserialize)]
struct BaselineRow {
    path: String,
    p50_us: u64,
}

/// Reactor-mode p50s measured on this 1-core container immediately
/// before the wire-speed data-plane rework, with the same phases.
const BASELINE_REACTOR_P50_US: [(&str, u64); 4] = [
    ("echo", 11),
    ("predict b=1", 26),
    ("predict b=8", 29),
    ("http_predict", 45),
];

fn stats(hist: &Histogram, iters: u64) -> RttStats {
    let snap = hist.snapshot();
    RttStats {
        iters,
        mean_us: snap.mean(),
        p50_us: snap.p50(),
        p99_us: snap.p99(),
    }
}

/// Closed-loop 64-byte echo ping-pong over localhost TCP.
async fn run_echo(phase: Duration) -> RttStats {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        conn.set_nodelay(true).unwrap();
        let mut buf = [0u8; MSG_BYTES];
        while conn.read_exact(&mut buf).await.is_ok() {
            if conn.write_all(&buf).await.is_err() {
                break;
            }
        }
    });

    let mut client = TcpStream::connect(addr).await.unwrap();
    client.set_nodelay(true).unwrap();
    let msg = [0x5au8; MSG_BYTES];
    let mut buf = [0u8; MSG_BYTES];
    // Warmup.
    for _ in 0..100 {
        client.write_all(&msg).await.unwrap();
        client.read_exact(&mut buf).await.unwrap();
    }
    let hist = Histogram::new();
    let mut iters = 0u64;
    let t_end = Instant::now() + phase;
    while Instant::now() < t_end {
        let t0 = Instant::now();
        client.write_all(&msg).await.unwrap();
        client.read_exact(&mut buf).await.unwrap();
        hist.record(t0.elapsed().as_micros() as u64);
        iters += 1;
    }
    drop(client);
    server.abort();
    stats(&hist, iters)
}

/// Closed-loop `predict_batch` RTT against a No-Op container over the
/// real RPC server/client pair.
async fn run_predict(batch: usize, phase: Duration) -> RttStats {
    let mut server = RpcServer::bind("127.0.0.1:0").await.unwrap();
    let addr = server.local_addr();
    let container = tokio::spawn(async move {
        let _ = serve_container(
            addr,
            ContainerClientConfig {
                container_name: "noop-0".into(),
                model_name: "noop".into(),
                model_version: 1,
            },
            Arc::new(|inputs: Vec<clipper_rpc::Input>| {
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }),
        )
        .await;
    });
    let (_info, handle) = server.next_container().await.expect("container registers");

    let inputs: Vec<clipper_rpc::Input> = (0..batch).map(|i| Arc::new(vec![i as f32; 8])).collect();
    for _ in 0..50 {
        handle.predict_batch(&inputs).await.unwrap();
    }
    let hist = Histogram::new();
    let mut iters = 0u64;
    let t_end = Instant::now() + phase;
    while Instant::now() < t_end {
        let t0 = Instant::now();
        let reply = handle.predict_batch(&inputs).await.unwrap();
        hist.record(t0.elapsed().as_micros() as u64);
        assert_eq!(reply.outputs.len(), batch);
        iters += 1;
    }
    container.abort();
    stats(&hist, iters)
}

/// Closed-loop keep-alive predict over the real HTTP frontend: head
/// parse, routing, JSON decode/encode — the full data-plane path.
async fn run_http_predict(phase: Duration) -> RttStats {
    let (frontend, _clipper) = clipper_bench::http_bench::start_echo_frontend().await;
    let mut client = clipper_bench::http_bench::HttpClient::connect(frontend.local_addr()).await;
    let req = clipper_bench::http_bench::predict_request(7);
    for _ in 0..100 {
        assert_eq!(client.call(&req).await, 200);
    }
    let hist = Histogram::new();
    let mut iters = 0u64;
    let t_end = Instant::now() + phase;
    while Instant::now() < t_end {
        let t0 = Instant::now();
        let status = client.call(&req).await;
        hist.record(t0.elapsed().as_micros() as u64);
        assert_eq!(status, 200);
        iters += 1;
    }
    stats(&hist, iters)
}

/// Park a blocked accept, then count timer registrations over a quiet
/// window. Under the reactor this must be zero: readiness never touches
/// the timer heap.
async fn measure_idle_timer_registrations(window: Duration) -> u64 {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let blocked = tokio::spawn(async move {
        let _ = listener.accept().await;
    });
    tokio::time::sleep(Duration::from_millis(20)).await; // reach the park
    let before = tokio::time::timer_registration_count();
    // std sleep: we must not register timers ourselves while measuring.
    std::thread::sleep(window);
    let regs = tokio::time::timer_registration_count() - before;
    blocked.abort();
    regs
}

async fn run_mode(mode: IoMode, phase: Duration, idle_window: Option<Duration>) -> ModeResult {
    tokio::net::set_io_mode(mode);
    let label = match mode {
        IoMode::Reactor => "reactor",
        IoMode::Backoff => "backoff",
    };
    let (idle_timer_registrations, idle_window_ms) = match idle_window {
        Some(w) => (
            Some(measure_idle_timer_registrations(w).await),
            Some(w.as_millis() as u64),
        ),
        None => (None, None),
    };
    let echo = run_echo(phase).await;
    let predict1 = run_predict(1, phase).await;
    let predict8 = run_predict(8, phase).await;
    let http_predict = run_http_predict(phase).await;
    ModeResult {
        mode: label.to_string(),
        echo,
        predict1,
        predict8,
        http_predict,
        idle_timer_registrations,
        idle_window_ms,
    }
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut phase_seconds = 2.0f64;
    let mut out_path = "BENCH_rpc_latency.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => phase_seconds = 0.5,
            "--seconds" => {
                i += 1;
                phase_seconds = args[i].parse().expect("--seconds <f64>");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other:?} (see --smoke/--seconds/--out)"),
        }
        i += 1;
    }
    let phase = Duration::from_secs_f64(phase_seconds);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reactor_active = reactor_active();

    println!(
        "== rpc_latency: epoll reactor vs timer-backoff readiness, {cores} cores, reactor {} ==\n",
        if reactor_active {
            "active"
        } else {
            "UNAVAILABLE (fallback only)"
        }
    );

    // Reactor phase FIRST: a parked backoff-mode accept re-arms the timer
    // ~1000×/s forever (that emulation is exactly what this PR removes),
    // so the idle window must run before any backoff socket exists.
    let idle_window = Duration::from_millis(300);
    let reactor = if reactor_active {
        run_mode(IoMode::Reactor, phase, Some(idle_window)).await
    } else {
        // No reactor on this host: record the fallback twice so the JSON
        // shape stays stable.
        run_mode(IoMode::Backoff, phase, None).await
    };
    let mut reactor = reactor;
    reactor.mode = "reactor".to_string();
    let backoff = run_mode(IoMode::Backoff, phase, None).await;
    // Restore the default for anything that might run after us.
    tokio::net::set_io_mode(IoMode::Reactor);

    let mut table = Table::new(&["mode", "path", "iters", "mean (µs)", "p50 (µs)", "p99 (µs)"]);
    for m in [&reactor, &backoff] {
        for (path, s) in [
            ("echo", &m.echo),
            ("predict b=1", &m.predict1),
            ("predict b=8", &m.predict8),
            ("http_predict", &m.http_predict),
        ] {
            table.row(&[
                m.mode.clone(),
                path.to_string(),
                format!("{}", s.iters),
                format!("{:.1}", s.mean_us),
                format!("{}", s.p50_us),
                format!("{}", s.p99_us),
            ]);
        }
    }
    table.print();

    let ratio = |b: u64, r: u64| {
        if r == 0 {
            b as f64 // a sub-µs reactor p50 floors at 0; treat as ≥ b×
        } else {
            b as f64 / r as f64
        }
    };
    let echo_p50_speedup = ratio(backoff.echo.p50_us, reactor.echo.p50_us);
    let predict1_p50_speedup = ratio(backoff.predict1.p50_us, reactor.predict1.p50_us);
    println!(
        "\necho p50: backoff {}µs vs reactor {}µs ({echo_p50_speedup:.1}×) · predict b=1 p50: {}µs vs {}µs ({predict1_p50_speedup:.1}×) · idle timer regs: {:?}",
        backoff.echo.p50_us,
        reactor.echo.p50_us,
        backoff.predict1.p50_us,
        reactor.predict1.p50_us,
        reactor.idle_timer_registrations,
    );

    let report = Report {
        bench: "rpc_latency".to_string(),
        cores,
        phase_seconds,
        msg_bytes: MSG_BYTES as u64,
        reactor_active,
        modes: vec![reactor.clone(), backoff.clone()],
        echo_p50_speedup,
        predict1_p50_speedup,
        baseline_reactor_p50_us: BASELINE_REACTOR_P50_US
            .iter()
            .map(|(path, p50_us)| BaselineRow {
                path: path.to_string(),
                p50_us: *p50_us,
            })
            .collect(),
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back and every
    // measurement must have made progress.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    assert!(
        parsed.modes.iter().all(|m| {
            m.echo.iters > 0
                && m.predict1.iters > 0
                && m.predict8.iters > 0
                && m.http_predict.iters > 0
        }),
        "malformed report: a measurement recorded zero iterations"
    );

    if std::env::var("RPC_LATENCY_ENFORCE").as_deref() == Ok("1") {
        if !reactor_active {
            println!("enforce: skipped (no epoll reactor on this host — fallback-only run)");
            return;
        }
        let mut ok = true;
        if echo_p50_speedup < 2.0 {
            eprintln!(
                "FAIL: reactor echo p50 {}µs is not ≥2× better than backoff {}µs ({echo_p50_speedup:.2}×)",
                reactor.echo.p50_us, backoff.echo.p50_us
            );
            ok = false;
        }
        if reactor.idle_timer_registrations != Some(0) {
            eprintln!(
                "FAIL: idle reactor runtime registered {:?} timer slots on the net path (want 0)",
                reactor.idle_timer_registrations
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("enforce: ok (echo p50 {echo_p50_speedup:.1}× ≥ 2×; idle timer registrations 0)");
    }
}

/// Portable reactor probe: on hosts without the epoll reactor (or when
/// its setup failed) the default io mode is the backoff fallback.
fn reactor_active() -> bool {
    tokio::net::io_mode() == IoMode::Reactor
}
