//! Model container runtime (§4.4 of the Clipper paper).
//!
//! The paper hosts each model in a Docker container that exposes the batch
//! prediction interface of Listing 1. Here a container is a Rust value with
//! the same observable properties:
//!
//! - **isolated & stateless-after-init**: a [`ModelContainer`] owns its
//!   model and answers batches serially (one model, one device), so its
//!   latency profile is a property of the container alone;
//! - **uniform interface**: containers serve batches either in-process
//!   ([`container::LocalContainerTransport`], a `BatchTransport`) or over
//!   the real TCP RPC system ([`container::spawn_tcp_container`]);
//! - **replicable**: spawn several containers for the same model to scale
//!   throughput (§4.4.1).
//!
//! Because we have no Tesla K20c, container *timing* is pluggable
//! ([`TimingModel`]): real measured compute, a calibrated latency profile
//! (the Figure-3 curves), or a simulated wave-parallel GPU ([`GpuDevice`],
//! used for the Figure-6/11 deep models). Answers always come from real
//! model code; only the clock is simulated. See DESIGN.md §3 for the
//! substitution argument.

pub mod container;
pub mod gpu;
pub mod latency;
pub mod logic;
pub mod profiles;

pub use container::TimingModel;
pub use container::{
    spawn_tcp_container, ContainerConfig, LocalContainerTransport, ModelContainer,
};
pub use gpu::{GpuDevice, GpuModelSpec};
pub use latency::{precise_sleep, LatencyProfile};
pub use logic::ContainerLogic;
pub use profiles::{fig11_model, fig3_profile, table2_zoo, Fig11Model, Fig3Model};
