//! Calibrated container profiles for the paper's figures.
//!
//! Absolute numbers on our substrate cannot match a 2016 Haswell/K20c
//! testbed; these calibrations target the paper's *relationships*: the
//! kernel SVM fits a 241×-smaller batch than the linear SVM under a 20 ms
//! SLO (§4.3), Spark's container has a low fixed cost while Scikit-Learn's
//! is high but amortizable (Figure 5), and the Figure-11 GPU models peak at
//! ≈23K/5.5K/56 qps for MNIST/CIFAR/ImageNet respectively.

use crate::gpu::GpuModelSpec;
use crate::latency::LatencyProfile;
use std::time::Duration;

/// The six model containers of Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fig3Model {
    /// (a) Linear SVM in Scikit-Learn: high fixed cost, tiny per-item cost
    /// (BLAS batch inference).
    LinearSvmSklearn,
    /// (b) Random forest in Scikit-Learn.
    RandomForestSklearn,
    /// (c) Kernel SVM in Scikit-Learn: per-item cost three orders above the
    /// linear SVM.
    KernelSvmSklearn,
    /// (d) No-Op container: pure RPC/system overhead.
    NoOp,
    /// (e) Logistic regression in Scikit-Learn.
    LogisticRegressionSklearn,
    /// (f) Linear SVM in PySpark: low fixed cost, efficient small batches.
    LinearSvmPyspark,
}

impl Fig3Model {
    /// All six, in figure order.
    pub fn all() -> [Fig3Model; 6] {
        [
            Fig3Model::LinearSvmSklearn,
            Fig3Model::RandomForestSklearn,
            Fig3Model::KernelSvmSklearn,
            Fig3Model::NoOp,
            Fig3Model::LogisticRegressionSklearn,
            Fig3Model::LinearSvmPyspark,
        ]
    }

    /// Display label matching the figure panel.
    pub fn label(&self) -> &'static str {
        match self {
            Fig3Model::LinearSvmSklearn => "Linear SVM (SKLearn)",
            Fig3Model::RandomForestSklearn => "Random Forest (SKLearn)",
            Fig3Model::KernelSvmSklearn => "Kernel SVM (SKLearn)",
            Fig3Model::NoOp => "No-Op",
            Fig3Model::LogisticRegressionSklearn => "Logistic Regression (SKLearn)",
            Fig3Model::LinearSvmPyspark => "Linear SVM (PySpark)",
        }
    }
}

/// The calibrated latency profile for a Figure-3 container.
pub fn fig3_profile(model: Fig3Model) -> LatencyProfile {
    let (base_us, per_item_us) = match model {
        // High fixed cost, cheap marginal items: the batching win (26×).
        Fig3Model::LinearSvmSklearn => (2_500.0, 12.0),
        Fig3Model::RandomForestSklearn => (2_000.0, 18.0),
        // ~3.3 ms/item: only single-digit batches fit a 20 ms SLO (241×
        // smaller than the linear SVM's max batch).
        Fig3Model::KernelSvmSklearn => (800.0, 3_300.0),
        // Sub-millisecond floor: isolates RPC + queueing overhead.
        Fig3Model::NoOp => (150.0, 1.0),
        Fig3Model::LogisticRegressionSklearn => (2_200.0, 14.0),
        // Low fixed cost: efficient at small batches, so delayed batching
        // buys nothing (Figure 5).
        Fig3Model::LinearSvmPyspark => (800.0, 25.0),
    };
    LatencyProfile {
        base: Duration::from_nanos((base_us * 1_000.0) as u64),
        per_item: Duration::from_nanos((per_item_us * 1_000.0) as u64),
        jitter_frac: 0.05,
    }
}

/// The three TensorFlow object-recognition models of Figure 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fig11Model {
    /// 4-layer conv net on MNIST, hand-tuned batch 512, ≈23K qps peak.
    MnistConvNet,
    /// 8-layer AlexNet on CIFAR-10, batch 128, ≈5.5K qps peak.
    CifarAlexNet,
    /// 22-layer Inception-v3 on ImageNet, batch 16, ≈56 qps peak.
    ImagenetInceptionV3,
}

impl Fig11Model {
    /// All three, in figure order.
    pub fn all() -> [Fig11Model; 3] {
        [
            Fig11Model::MnistConvNet,
            Fig11Model::CifarAlexNet,
            Fig11Model::ImagenetInceptionV3,
        ]
    }

    /// Display label matching the figure panel.
    pub fn label(&self) -> &'static str {
        match self {
            Fig11Model::MnistConvNet => "MNIST (4-layer conv)",
            Fig11Model::CifarAlexNet => "CIFAR-10 (AlexNet)",
            Fig11Model::ImagenetInceptionV3 => "ImageNet (Inception-v3)",
        }
    }

    /// The paper's hand-tuned static batch size for this model.
    pub fn tuned_batch(&self) -> usize {
        match self {
            Fig11Model::MnistConvNet => 512,
            Fig11Model::CifarAlexNet => 128,
            Fig11Model::ImagenetInceptionV3 => 16,
        }
    }

    /// Input dimensionality shipped per query.
    pub fn input_dim(&self) -> usize {
        match self {
            Fig11Model::MnistConvNet => 784,
            Fig11Model::CifarAlexNet => 3_072,
            // Inception serving moves decoded 299×299×3 tensors; we ship the
            // 2048-d penultimate features (see DESIGN.md substitutions).
            Fig11Model::ImagenetInceptionV3 => 2_048,
        }
    }
}

/// The calibrated GPU spec for a Figure-11 model.
pub fn fig11_model(model: Fig11Model) -> GpuModelSpec {
    match model {
        Fig11Model::MnistConvNet => GpuModelSpec {
            name: "mnist-conv".into(),
            layers: "4 Conv".into(),
            wave_size: 512,
            wave_time: Duration::from_micros(21_500),
            dispatch: Duration::from_micros(500),
        },
        Fig11Model::CifarAlexNet => GpuModelSpec {
            name: "cifar-alexnet".into(),
            layers: "5 Conv and 3 FC".into(),
            wave_size: 128,
            wave_time: Duration::from_micros(22_500),
            dispatch: Duration::from_micros(700),
        },
        Fig11Model::ImagenetInceptionV3 => GpuModelSpec {
            name: "imagenet-inception-v3".into(),
            layers: "6 Conv, 1 FC, & 3 Incept.".into(),
            wave_size: 16,
            wave_time: Duration::from_micros(280_000),
            dispatch: Duration::from_micros(5_000),
        },
    }
}

/// The Table-2 deep-model zoo used by the ImageNet ensemble experiments
/// (Figure 7). Wave times are staggered so the ensemble has heterogeneous
/// stragglers, as in the paper.
pub fn table2_zoo() -> Vec<GpuModelSpec> {
    vec![
        GpuModelSpec {
            name: "vgg".into(),
            layers: "13 Conv. and 3 FC".into(),
            wave_size: 32,
            wave_time: Duration::from_micros(90_000),
            dispatch: Duration::from_micros(2_000),
        },
        GpuModelSpec {
            name: "googlenet".into(),
            layers: "96 Conv. and 5 FC".into(),
            wave_size: 64,
            wave_time: Duration::from_micros(60_000),
            dispatch: Duration::from_micros(2_000),
        },
        GpuModelSpec {
            name: "resnet-152".into(),
            layers: "151 Conv. and 1 FC".into(),
            wave_size: 32,
            wave_time: Duration::from_micros(120_000),
            dispatch: Duration::from_micros(2_000),
        },
        GpuModelSpec {
            name: "caffenet".into(),
            layers: "5 Conv. and 3 FC".into(),
            wave_size: 128,
            wave_time: Duration::from_micros(30_000),
            dispatch: Duration::from_micros(1_000),
        },
        GpuModelSpec {
            name: "inception".into(),
            layers: "6 Conv, 1 FC, & 3 Incept.".into(),
            wave_size: 64,
            wave_time: Duration::from_micros(70_000),
            dispatch: Duration::from_micros(2_000),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_svm_batch_is_hundreds_of_times_smaller() {
        // The paper's 241× claim (§4.3): max batch under a 20 ms SLO.
        let slo = Duration::from_millis(20);
        let linear = fig3_profile(Fig3Model::LinearSvmSklearn).max_batch_under(slo);
        let kernel = fig3_profile(Fig3Model::KernelSvmSklearn).max_batch_under(slo);
        assert!(kernel >= 1, "kernel svm fits at least one item");
        let ratio = linear as f64 / kernel as f64;
        assert!(
            (100.0..=500.0).contains(&ratio),
            "expected ratio within 2x of the paper's 241x, got {ratio}"
        );
    }

    #[test]
    fn sklearn_svm_has_high_fixed_cost_pyspark_low() {
        let sk = fig3_profile(Fig3Model::LinearSvmSklearn);
        let spark = fig3_profile(Fig3Model::LinearSvmPyspark);
        assert!(sk.base > spark.base * 2, "Figure 5 premise");
        assert!(sk.per_item < spark.per_item);
    }

    #[test]
    fn fig11_peak_throughputs_match_paper_regime() {
        // TF-Serving peaks: 23,138 / 5,519 / 56 qps. Allow ±20%.
        let checks = [
            (Fig11Model::MnistConvNet, 23_138.0),
            (Fig11Model::CifarAlexNet, 5_519.0),
            (Fig11Model::ImagenetInceptionV3, 56.0),
        ];
        for (m, paper) in checks {
            let peak = fig11_model(m).peak_throughput();
            let ratio = peak / paper;
            assert!(
                (0.8..=1.2).contains(&ratio),
                "{m:?}: peak {peak:.0} vs paper {paper} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn zoo_has_five_models_with_distinct_costs() {
        let zoo = table2_zoo();
        assert_eq!(zoo.len(), 5);
        let mut times: Vec<_> = zoo.iter().map(|s| s.wave_time).collect();
        times.sort();
        times.dedup();
        assert_eq!(times.len(), 5, "wave times must be distinct for stragglers");
    }

    #[test]
    fn all_fig3_models_have_labels() {
        for m in Fig3Model::all() {
            assert!(!m.label().is_empty());
        }
        for m in Fig11Model::all() {
            assert!(!m.label().is_empty());
            assert!(m.tuned_batch() > 0);
            assert!(m.input_dim() > 0);
        }
    }
}
