//! RESP-style wire protocol (the Redis serialization protocol subset the
//! store speaks).
//!
//! Requests are arrays of bulk strings (`*N\r\n$len\r\n<bytes>\r\n...`);
//! replies are simple strings (`+OK\r\n`), errors (`-ERR ...\r\n`),
//! integers (`:42\r\n`), bulk strings (`$5\r\nhello\r\n`), or null
//! (`$-1\r\n`). This mirrors real Redis closely enough that the protocol
//! knowledge transfers.

use bytes::{Buf, BytesMut};

/// Maximum accepted bulk-string length (16 MiB) — bounds memory under a
/// malicious or corrupt peer.
pub const MAX_BULK_LEN: usize = 16 << 20;

/// Write `n`'s decimal digits into the tail of `tmp`, returning the
/// written slice. Integer emit without `format!`'s formatting machinery
/// (or its temporary `String`) — RESP frames integers and lengths on
/// every reply.
pub(crate) fn u64_digits(tmp: &mut [u8; 20], mut n: u64) -> &[u8] {
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    &tmp[i..]
}

fn push_int(out: &mut BytesMut, v: i64) {
    if v < 0 {
        out.extend_from_slice(b"-");
    }
    let mut tmp = [0u8; 20];
    out.extend_from_slice(u64_digits(&mut tmp, v.unsigned_abs()));
}

/// Encode a request — an array of bulk strings — straight from borrowed
/// slices, skipping the owned [`RespValue`] tree a client would otherwise
/// build (and its per-argument `Vec` clones) on every call.
pub fn encode_command(out: &mut BytesMut, parts: &[&[u8]]) {
    out.extend_from_slice(b"*");
    push_int(out, parts.len() as i64);
    out.extend_from_slice(b"\r\n");
    for p in parts {
        out.extend_from_slice(b"$");
        push_int(out, p.len() as i64);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(p);
        out.extend_from_slice(b"\r\n");
    }
}

/// A RESP value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespValue {
    /// `+...` simple string.
    Simple(String),
    /// `-...` error string.
    Error(String),
    /// `:n` integer.
    Integer(i64),
    /// `$len` bulk bytes.
    Bulk(Vec<u8>),
    /// `$-1` null.
    Null,
    /// `*n` array.
    Array(Vec<RespValue>),
}

impl RespValue {
    /// Serialize into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            RespValue::Simple(s) => {
                out.extend_from_slice(b"+");
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Error(s) => {
                out.extend_from_slice(b"-");
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Integer(n) => {
                out.extend_from_slice(b":");
                push_int(out, *n);
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Bulk(b) => {
                out.extend_from_slice(b"$");
                push_int(out, b.len() as i64);
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Null => out.extend_from_slice(b"$-1\r\n"),
            RespValue::Array(items) => {
                out.extend_from_slice(b"*");
                push_int(out, items.len() as i64);
                out.extend_from_slice(b"\r\n");
                for item in items {
                    item.encode(out);
                }
            }
        }
    }

    /// Try to parse one complete value from the front of `buf`.
    ///
    /// Returns `Ok(None)` if more bytes are needed (buf untouched),
    /// `Ok(Some(v))` with the bytes consumed, or `Err` on malformed input.
    pub fn parse(buf: &mut BytesMut) -> Result<Option<RespValue>, String> {
        let mut cursor = Cursor {
            data: buf.as_ref(),
            pos: 0,
        };
        match parse_value(&mut cursor) {
            Ok(v) => {
                let consumed = cursor.pos;
                buf.advance(consumed);
                Ok(Some(v))
            }
            Err(ParseOutcome::Incomplete) => Ok(None),
            Err(ParseOutcome::Bad(e)) => Err(e),
        }
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

enum ParseOutcome {
    Incomplete,
    Bad(String),
}

fn read_line<'a>(c: &mut Cursor<'a>) -> Result<&'a [u8], ParseOutcome> {
    let rest = &c.data[c.pos..];
    match rest.windows(2).position(|w| w == b"\r\n") {
        Some(i) => {
            let line = &rest[..i];
            c.pos += i + 2;
            Ok(line)
        }
        None => Err(ParseOutcome::Incomplete),
    }
}

fn parse_int(line: &[u8]) -> Result<i64, ParseOutcome> {
    std::str::from_utf8(line)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseOutcome::Bad(format!("bad integer {line:?}")))
}

fn parse_value(c: &mut Cursor<'_>) -> Result<RespValue, ParseOutcome> {
    if c.pos >= c.data.len() {
        return Err(ParseOutcome::Incomplete);
    }
    let tag = c.data[c.pos];
    c.pos += 1;
    match tag {
        b'+' => {
            let line = read_line(c)?;
            Ok(RespValue::Simple(
                String::from_utf8_lossy(line).into_owned(),
            ))
        }
        b'-' => {
            let line = read_line(c)?;
            Ok(RespValue::Error(String::from_utf8_lossy(line).into_owned()))
        }
        b':' => {
            let line = read_line(c)?;
            Ok(RespValue::Integer(parse_int(line)?))
        }
        b'$' => {
            let line = read_line(c)?;
            let len = parse_int(line)?;
            if len < 0 {
                return Ok(RespValue::Null);
            }
            let len = len as usize;
            if len > MAX_BULK_LEN {
                return Err(ParseOutcome::Bad(format!("bulk too large: {len}")));
            }
            if c.data.len() - c.pos < len + 2 {
                return Err(ParseOutcome::Incomplete);
            }
            let body = c.data[c.pos..c.pos + len].to_vec();
            if &c.data[c.pos + len..c.pos + len + 2] != b"\r\n" {
                return Err(ParseOutcome::Bad("bulk missing CRLF".into()));
            }
            c.pos += len + 2;
            Ok(RespValue::Bulk(body))
        }
        b'*' => {
            let line = read_line(c)?;
            let n = parse_int(line)?;
            if n < 0 {
                return Ok(RespValue::Null);
            }
            if n as usize > 1 << 16 {
                return Err(ParseOutcome::Bad(format!("array too large: {n}")));
            }
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(parse_value(c)?);
            }
            Ok(RespValue::Array(items))
        }
        t => Err(ParseOutcome::Bad(format!("unknown RESP tag {t:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: RespValue) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let parsed = RespValue::parse(&mut buf).unwrap().unwrap();
        assert_eq!(parsed, v);
        assert!(buf.is_empty(), "all bytes consumed");
    }

    #[test]
    fn integer_emit_covers_extremes() {
        for v in [0i64, 1, -1, 9, 10, -10, i64::MAX, i64::MIN] {
            let mut buf = BytesMut::new();
            RespValue::Integer(v).encode(&mut buf);
            assert_eq!(&buf[..], format!(":{v}\r\n").as_bytes(), "value {v}");
            roundtrip(RespValue::Integer(v));
        }
    }

    #[test]
    fn encode_command_matches_the_value_tree() {
        let parts: [&[u8]; 3] = [b"SET", b"key", b"val\r\nue"];
        let mut direct = BytesMut::new();
        encode_command(&mut direct, &parts);
        let mut tree = BytesMut::new();
        RespValue::Array(parts.iter().map(|p| RespValue::Bulk(p.to_vec())).collect())
            .encode(&mut tree);
        assert_eq!(&direct[..], &tree[..]);

        let mut empty = BytesMut::new();
        encode_command(&mut empty, &[]);
        assert_eq!(&empty[..], b"*0\r\n");
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(RespValue::Simple("OK".into()));
        roundtrip(RespValue::Error("ERR nope".into()));
        roundtrip(RespValue::Integer(-7));
        roundtrip(RespValue::Bulk(b"hello\r\nworld".to_vec()));
        roundtrip(RespValue::Null);
        roundtrip(RespValue::Array(vec![
            RespValue::Bulk(b"GET".to_vec()),
            RespValue::Bulk(b"key".to_vec()),
        ]));
    }

    #[test]
    fn partial_input_returns_none_and_preserves_buffer() {
        let mut buf = BytesMut::new();
        RespValue::Bulk(b"hello".to_vec()).encode(&mut buf);
        let full = buf.clone();
        let mut partial = BytesMut::from(&full[..4]);
        assert!(RespValue::parse(&mut partial).unwrap().is_none());
        assert_eq!(&partial[..], &full[..4], "buffer untouched on incomplete");
    }

    #[test]
    fn pipelined_values_parse_in_order() {
        let mut buf = BytesMut::new();
        RespValue::Integer(1).encode(&mut buf);
        RespValue::Integer(2).encode(&mut buf);
        assert_eq!(
            RespValue::parse(&mut buf).unwrap().unwrap(),
            RespValue::Integer(1)
        );
        assert_eq!(
            RespValue::parse(&mut buf).unwrap().unwrap(),
            RespValue::Integer(2)
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn malformed_tag_is_error() {
        let mut buf = BytesMut::from(&b"!bogus\r\n"[..]);
        assert!(RespValue::parse(&mut buf).is_err());
    }

    #[test]
    fn oversized_bulk_rejected() {
        let mut buf = BytesMut::from(format!("${}\r\n", MAX_BULK_LEN + 1).as_bytes());
        assert!(RespValue::parse(&mut buf).is_err());
    }

    #[test]
    fn nested_arrays_roundtrip() {
        roundtrip(RespValue::Array(vec![
            RespValue::Array(vec![RespValue::Integer(1)]),
            RespValue::Null,
        ]));
    }
}
