//! Multi-producer single-consumer channels, bounded and unbounded.

use std::collections::VecDeque;
use std::future::poll_fn;
use std::sync::{Arc, Mutex};
use std::task::{Poll, Waker};

struct Chan<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    rx_alive: bool,
    /// Set by `close()`: sends fail, but the receiver may drain.
    closed: bool,
    rx_waker: Option<Waker>,
    tx_wakers: VecDeque<Waker>,
}

impl<T> Chan<T> {
    fn wake_rx(&mut self) -> Option<Waker> {
        self.rx_waker.take()
    }

    /// Take every parked sender waker. Waking all (rather than one) is
    /// deliberate: a stale waker from a cancelled `send()` future must
    /// not swallow the wake meant for a live sender.
    fn take_tx_wakers(&mut self) -> Vec<Waker> {
        self.tx_wakers.drain(..).collect()
    }

    fn accepting(&self) -> bool {
        self.rx_alive && !self.closed
    }
}

/// Channel errors, mirroring `tokio::sync::mpsc::error`.
pub mod error {
    /// The receiver was dropped; the value comes back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "channel closed")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Failure modes of `try_send`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value comes back.
        Full(T),
        /// The receiver was dropped; the value comes back.
        Closed(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "channel full"),
                TrySendError::Closed(_) => write!(f, "channel closed"),
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

    /// Failure modes of `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message ready.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}
}

use error::{SendError, TryRecvError, TrySendError};

/// Bounded sending half.
pub struct Sender<T> {
    chan: Arc<Mutex<Chan<T>>>,
}

/// Bounded receiving half.
pub struct Receiver<T> {
    chan: Arc<Mutex<Chan<T>>>,
}

/// Unbounded sending half.
pub struct UnboundedSender<T> {
    chan: Arc<Mutex<Chan<T>>>,
}

/// Unbounded receiving half.
pub struct UnboundedReceiver<T> {
    chan: Arc<Mutex<Chan<T>>>,
}

fn new_chan<T>(capacity: Option<usize>) -> Arc<Mutex<Chan<T>>> {
    Arc::new(Mutex::new(Chan {
        queue: VecDeque::new(),
        capacity,
        senders: 1,
        rx_alive: true,
        closed: false,
        rx_waker: None,
        tx_wakers: VecDeque::new(),
    }))
}

/// Create a bounded channel with room for `capacity` queued messages.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "mpsc capacity must be positive");
    let chan = new_chan(Some(capacity));
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Create an unbounded channel.
pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
    let chan = new_chan(None);
    (
        UnboundedSender {
            chan: Arc::clone(&chan),
        },
        UnboundedReceiver { chan },
    )
}

fn clone_sender<T>(chan: &Arc<Mutex<Chan<T>>>) -> Arc<Mutex<Chan<T>>> {
    chan.lock().unwrap().senders += 1;
    Arc::clone(chan)
}

fn drop_sender<T>(chan: &Arc<Mutex<Chan<T>>>) {
    let waker = {
        let mut c = chan.lock().unwrap();
        c.senders -= 1;
        if c.senders == 0 {
            c.wake_rx()
        } else {
            None
        }
    };
    if let Some(w) = waker {
        w.wake();
    }
}

fn recv_poll<T>(chan: &Arc<Mutex<Chan<T>>>, waker: &Waker) -> Poll<Option<T>> {
    let (result, tx_wakers) = {
        let mut c = chan.lock().unwrap();
        if let Some(v) = c.queue.pop_front() {
            let ws = c.take_tx_wakers();
            (Poll::Ready(Some(v)), ws)
        } else if c.senders == 0 || c.closed {
            (Poll::Ready(None), Vec::new())
        } else {
            c.rx_waker = Some(waker.clone());
            (Poll::Pending, Vec::new())
        }
    };
    for w in tx_wakers {
        w.wake();
    }
    result
}

fn try_recv_inner<T>(chan: &Arc<Mutex<Chan<T>>>) -> Result<T, TryRecvError> {
    let (result, tx_wakers) = {
        let mut c = chan.lock().unwrap();
        match c.queue.pop_front() {
            Some(v) => {
                let ws = c.take_tx_wakers();
                (Ok(v), ws)
            }
            None if c.senders == 0 || c.closed => (Err(TryRecvError::Disconnected), Vec::new()),
            None => (Err(TryRecvError::Empty), Vec::new()),
        }
    };
    for w in tx_wakers {
        w.wake();
    }
    result
}

fn drop_receiver<T>(chan: &Arc<Mutex<Chan<T>>>) {
    let wakers: Vec<Waker> = {
        let mut c = chan.lock().unwrap();
        c.rx_alive = false;
        c.queue.clear();
        c.tx_wakers.drain(..).collect()
    };
    for w in wakers {
        w.wake();
    }
}

/// `close()` semantics (matching tokio): further sends fail immediately,
/// but already-queued messages stay receivable until drained, after which
/// `recv()` returns `None`.
fn close_receiver<T>(chan: &Arc<Mutex<Chan<T>>>) {
    let wakers: Vec<Waker> = {
        let mut c = chan.lock().unwrap();
        c.closed = true;
        let mut ws = c.take_tx_wakers();
        ws.extend(c.wake_rx());
        ws
    };
    for w in wakers {
        w.wake();
    }
}

impl<T> Sender<T> {
    /// Send, waiting for queue space if the channel is full.
    pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut slot = Some(value);
        poll_fn(move |cx| {
            let (result, rx_waker) = {
                let mut c = self.chan.lock().unwrap();
                if !c.accepting() {
                    (
                        Poll::Ready(Err(SendError(slot.take().expect("polled after done")))),
                        None,
                    )
                } else if c.queue.len() < c.capacity.unwrap_or(usize::MAX) {
                    c.queue.push_back(slot.take().expect("polled after done"));
                    let w = c.wake_rx();
                    (Poll::Ready(Ok(())), w)
                } else {
                    c.tx_wakers.push_back(cx.waker().clone());
                    (Poll::Pending, None)
                }
            };
            if let Some(w) = rx_waker {
                w.wake();
            }
            result
        })
        .await
    }

    /// Send without waiting; fails if the channel is full or closed.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let (result, rx_waker) = {
            let mut c = self.chan.lock().unwrap();
            if !c.accepting() {
                (Err(TrySendError::Closed(value)), None)
            } else if c.queue.len() < c.capacity.unwrap_or(usize::MAX) {
                c.queue.push_back(value);
                let w = c.wake_rx();
                (Ok(()), w)
            } else {
                (Err(TrySendError::Full(value)), None)
            }
        };
        if let Some(w) = rx_waker {
            w.wake();
        }
        result
    }

    /// Whether the receiver has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.chan.lock().unwrap().rx_alive
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            chan: clone_sender(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        drop_sender(&self.chan);
    }
}

impl<T> Receiver<T> {
    /// Receive the next message; `None` once all senders are gone and the
    /// queue is drained.
    pub async fn recv(&mut self) -> Option<T> {
        poll_fn(|cx| recv_poll(&self.chan, cx.waker())).await
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        try_recv_inner(&self.chan)
    }

    /// Close the channel: further sends fail; queued messages can still
    /// be drained with `recv()`.
    pub fn close(&mut self) {
        close_receiver(&self.chan);
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        drop_receiver(&self.chan);
    }
}

impl<T> UnboundedSender<T> {
    /// Send immediately (no backpressure).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let (result, rx_waker) = {
            let mut c = self.chan.lock().unwrap();
            if !c.accepting() {
                (Err(SendError(value)), None)
            } else {
                c.queue.push_back(value);
                let w = c.wake_rx();
                (Ok(()), w)
            }
        };
        if let Some(w) = rx_waker {
            w.wake();
        }
        result
    }

    /// Whether the channel no longer accepts sends.
    pub fn is_closed(&self) -> bool {
        !self.chan.lock().unwrap().accepting()
    }
}

impl<T> Clone for UnboundedSender<T> {
    fn clone(&self) -> Self {
        UnboundedSender {
            chan: clone_sender(&self.chan),
        }
    }
}

impl<T> Drop for UnboundedSender<T> {
    fn drop(&mut self) {
        drop_sender(&self.chan);
    }
}

impl<T> UnboundedReceiver<T> {
    /// Receive the next message; `None` once all senders are gone and the
    /// queue is drained.
    pub async fn recv(&mut self) -> Option<T> {
        poll_fn(|cx| recv_poll(&self.chan, cx.waker())).await
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        try_recv_inner(&self.chan)
    }

    /// Close the channel: further sends fail; queued messages can still
    /// be drained with `recv()`.
    pub fn close(&mut self) {
        close_receiver(&self.chan);
    }
}

impl<T> Drop for UnboundedReceiver<T> {
    fn drop(&mut self) {
        drop_receiver(&self.chan);
    }
}
