//! Model failure and automatic recovery (the Figure-8 scenario, live).
//!
//! Five models serve an object-recognition app; the best one silently
//! starts mispredicting (feature corruption), and the Exp3 policy reroutes
//! traffic away within a few hundred feedback observations — no human, no
//! redeploy. When the model heals, traffic drifts back.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use clipper::containers::{
    ContainerConfig, ContainerLogic, LocalContainerTransport, ModelContainer, TimingModel,
};
use clipper::core::{AppConfig, Clipper, Feedback, ModelId, PolicyKind};
use clipper::ml::datasets::DatasetSpec;
use clipper::ml::models::{LinearSvm, LinearSvmConfig, Model};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// A model wrapper whose accuracy can be sabotaged at runtime.
struct Degradable {
    inner: LinearSvm,
    broken: Arc<RwLock<bool>>,
}

impl Model for Degradable {
    fn name(&self) -> &str {
        "degradable"
    }
    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut s = self.inner.scores(x);
        if *self.broken.read() {
            // Silent failure: rotate the scores so the argmax is wrong.
            s.rotate_right(1);
        }
        s
    }
}

#[tokio::main]
async fn main() {
    println!("== Silent model failure and recovery ==\n");

    // Hard enough that under-trained models are visibly worse, and a big
    // test split so each phase serves *fresh* queries (cached predictions
    // from the healthy era must not mask the failure).
    let dataset = DatasetSpec::mnist_like()
        .with_train_size(800)
        .with_test_size(2_400)
        .with_difficulty(0.3)
        .generate(17);

    let clipper = Clipper::builder().build();
    let broken = Arc::new(RwLock::new(false));
    let mut ids = Vec::new();

    // Models 0..3: much weaker than model-4 (trained on slivers of data,
    // like the staggered-accuracy CIFAR models in Figure 8), so the
    // recovery dynamics are visible.
    for (i, frac) in [0.025f64, 0.02, 0.015, 0.012].iter().enumerate() {
        let n = (dataset.train.len() as f64 * frac) as usize;
        let mut sub = dataset.clone();
        sub.train.truncate(n.max(20));
        let model = Arc::new(LinearSvm::train(
            &sub,
            &LinearSvmConfig::default(),
            i as u64,
        ));
        let id = ModelId::new(&format!("model-{i}"), 1);
        deploy(&clipper, &id, ContainerLogic::Classifier(model));
        ids.push(id);
    }
    // Model 4: the best model — full data, but degradable.
    let best = Arc::new(Degradable {
        inner: LinearSvm::train(&dataset, &LinearSvmConfig::default(), 99),
        broken: broken.clone(),
    });
    let best_id = ModelId::new("model-4", 1);
    deploy(&clipper, &best_id, ContainerLogic::Classifier(best));
    ids.push(best_id.clone());

    clipper.register_app(
        AppConfig::new("vision", ids)
            .with_policy(PolicyKind::Exp3 { eta: 1.0 })
            .with_slo(Duration::from_millis(50)),
    );

    // Each phase consumes a fresh slice of the test set — real serving
    // traffic doesn't repeat, and stale cache entries must not hide the
    // failure.
    let phase = |name: &'static str,
                 range: std::ops::Range<usize>,
                 clipper: Clipper,
                 dataset: clipper::ml::datasets::Dataset| async move {
        let mut wrong = 0usize;
        let total = range.len();
        for i in range {
            let ex = &dataset.test[i];
            let input = Arc::new(ex.x.clone());
            let p = clipper
                .predict("vision", None, input.clone())
                .await
                .unwrap();
            if p.output.label() != ex.y {
                wrong += 1;
            }
            clipper
                .feedback("vision", None, input, Feedback::class(ex.y))
                .await
                .unwrap();
        }
        let state = clipper.policy_state("vision", None).unwrap();
        let p4 = state.probabilities()[4];
        println!(
            "{name:<22} error {:>5.1}%   P(model-4) = {p4:.2}",
            100.0 * wrong as f64 / total as f64
        );
    };

    phase("healthy (warmup)", 0..600, clipper.clone(), dataset.clone()).await;
    *broken.write() = true;
    println!("--- model-4 silently degrades ---");
    phase("degraded", 600..1200, clipper.clone(), dataset.clone()).await;
    *broken.write() = false;
    println!("--- model-4 recovers ---");
    phase("recovered", 1200..2400, clipper.clone(), dataset.clone()).await;

    println!("\nExp3 shifted traffic off the failing model and back, from feedback alone.");
}

fn deploy(clipper: &Clipper, id: &ModelId, logic: ContainerLogic) {
    clipper.add_model(id.clone(), Default::default());
    let container = ModelContainer::new(ContainerConfig {
        name: format!("{}:0", id.name),
        model_name: id.name.clone(),
        model_version: 1,
        logic,
        timing: TimingModel::Measured,
        seed: 5,
    });
    clipper
        .add_replica(id, LocalContainerTransport::new(container))
        .expect("replica");
}
