//! Cross-crate behavioral tests of the serving guarantees the paper
//! claims: bounded latency, straggler substitution, replica failover,
//! load shedding, and adaptive batch growth under load.

use clipper::containers::{
    ContainerConfig, ContainerLogic, LatencyProfile, LocalContainerTransport, ModelContainer,
    TimingModel,
};
use clipper::core::{
    AppConfig, BatchConfig, BatchStrategy, Clipper, Feedback, ModelId, Output, PolicyKind,
};
use clipper::rpc::faulty::{FaultConfig, FaultyTransport};
use clipper::rpc::message::WireOutput;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn profile_container(name: &str, base_ms: u64, per_item_us: u64) -> Arc<ModelContainer> {
    ModelContainer::new(ContainerConfig {
        name: format!("{name}:0"),
        model_name: name.to_string(),
        model_version: 1,
        logic: ContainerLogic::Fixed(WireOutput::Class(1)),
        timing: TimingModel::Profile(LatencyProfile::deterministic(
            Duration::from_millis(base_ms),
            Duration::from_micros(per_item_us),
        )),
        seed: 1,
    })
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn latency_is_bounded_by_the_slo_under_stragglers() {
    // Ensemble of 6 with heavy straggler injection: every prediction must
    // still return near the 25ms deadline.
    let clipper = Clipper::builder().build();
    let mut ids = Vec::new();
    for i in 0..6 {
        let id = ModelId::new(&format!("m{i}"), 1);
        clipper.add_model(id.clone(), BatchConfig::default());
        let faulty = Arc::new(FaultyTransport::new(
            LocalContainerTransport::new(profile_container(&format!("m{i}"), 1, 10)),
            FaultConfig::stragglers(0.3, Duration::from_millis(200)),
            i as u64,
        ));
        clipper.add_replica(&id, faulty).unwrap();
        ids.push(id);
    }
    clipper.register_app(
        AppConfig::new("app", ids)
            .with_policy(PolicyKind::MajorityVote)
            .with_slo(Duration::from_millis(25)),
    );
    for q in 0..40 {
        let t0 = Instant::now();
        let p = clipper
            .predict("app", None, Arc::new(vec![q as f32]))
            .await
            .unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "query {q} took {elapsed:?} — straggler mitigation failed"
        );
        assert!(p.models_used + p.models_missing == 6);
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn replica_failover_keeps_serving() {
    // Two replicas; one drops every request. Round-robin plus retryable
    // routing must still serve everything from the healthy replica.
    let clipper = Clipper::builder().build();
    let id = ModelId::new("m", 1);
    clipper.add_model(
        id.clone(),
        BatchConfig {
            strategy: BatchStrategy::NoBatching,
            ..Default::default()
        },
    );
    let dead = Arc::new(FaultyTransport::new(
        LocalContainerTransport::new(profile_container("dead", 0, 1)),
        FaultConfig {
            drop_prob: 1.0,
            ..Default::default()
        },
        7,
    ));
    clipper.add_replica(&id, dead).unwrap();
    clipper
        .add_replica(
            &id,
            LocalContainerTransport::new(profile_container("alive", 0, 1)),
        )
        .unwrap();
    clipper.register_app(
        AppConfig::new("app", vec![id])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(50)),
    );
    let mut served = 0;
    for q in 0..30 {
        let p = clipper
            .predict("app", None, Arc::new(vec![q as f32]))
            .await
            .unwrap();
        if p.models_used > 0 {
            served += 1;
            assert_eq!(p.output, Output::Class(1));
        }
    }
    // Round robin alternates; the dead replica's queries fall back to the
    // app default, the healthy replica's all succeed.
    assert!(served >= 15, "served {served}/30");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn adaptive_batching_grows_batches_under_load() {
    let clipper = Clipper::builder().disable_cache().build();
    let id = ModelId::new("m", 1);
    clipper.add_model(
        id.clone(),
        BatchConfig {
            strategy: BatchStrategy::default(),
            slo: Duration::from_millis(20),
            ..Default::default()
        },
    );
    clipper
        .add_replica(
            &id,
            LocalContainerTransport::new(profile_container("m", 2, 20)),
        )
        .unwrap();
    clipper.register_app(
        AppConfig::new("app", vec![id])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_secs(2)),
    );

    // Hammer with 128 concurrent clients for a moment.
    let mut tasks = Vec::new();
    for c in 0..128 {
        let clipper = clipper.clone();
        tasks.push(tokio::spawn(async move {
            for q in 0..40u32 {
                let _ = clipper
                    .predict("app", None, Arc::new(vec![c as f32, q as f32]))
                    .await;
            }
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    let snap = clipper.registry().snapshot();
    let (_, max_batch) = snap
        .values
        .iter()
        .find_map(|(k, v)| {
            if k.ends_with("batch_size") {
                if let clipper::metrics::MetricValue::Histogram { max, .. } = v {
                    return Some((k.clone(), *max));
                }
            }
            None
        })
        .expect("batch histogram");
    assert!(
        max_batch >= 16,
        "AIMD should have grown batches under load, max {max_batch}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn cache_is_shared_across_predict_and_feedback() {
    let clipper = Clipper::builder().build();
    let id = ModelId::new("m", 1);
    clipper.add_model(id.clone(), BatchConfig::default());
    clipper
        .add_replica(
            &id,
            LocalContainerTransport::new(profile_container("m", 1, 10)),
        )
        .unwrap();
    clipper.register_app(
        AppConfig::new("app", vec![id])
            .with_policy(PolicyKind::Exp3 { eta: 0.2 })
            .with_slo(Duration::from_millis(100)),
    );
    let input: clipper::core::Input = Arc::new(vec![3.3; 16]);
    clipper.predict("app", None, input.clone()).await.unwrap();
    tokio::time::sleep(Duration::from_millis(20)).await;
    let misses_before = clipper.abstraction().cache().stats().misses;
    clipper
        .feedback("app", None, input, Feedback::class(1))
        .await
        .unwrap();
    let misses_after = clipper.abstraction().cache().stats().misses;
    assert_eq!(
        misses_before, misses_after,
        "feedback join must not re-evaluate a cached prediction"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn version_bump_is_a_distinct_model() {
    // Deploying v2 next to v1 serves both transparently (§2.2's model
    // swap story) — they are distinct cache/queue/selection entities.
    let clipper = Clipper::builder().build();
    let v1 = ModelId::new("m", 1);
    let v2 = ModelId::new("m", 2);
    for (id, label) in [(v1.clone(), 1u32), (v2.clone(), 2u32)] {
        clipper.add_model(id.clone(), BatchConfig::default());
        let c = ModelContainer::new(ContainerConfig {
            name: format!("{id}:0"),
            model_name: id.name.clone(),
            model_version: id.version,
            logic: ContainerLogic::Fixed(WireOutput::Class(label)),
            timing: TimingModel::Measured,
            seed: 0,
        });
        clipper
            .add_replica(&id, LocalContainerTransport::new(c))
            .unwrap();
    }
    clipper.register_app(
        AppConfig::new("old", vec![v1])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(50)),
    );
    clipper.register_app(
        AppConfig::new("new", vec![v2])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(50)),
    );
    let x: clipper::core::Input = Arc::new(vec![1.0]);
    let old = clipper.predict("old", None, x.clone()).await.unwrap();
    let new = clipper.predict("new", None, x).await.unwrap();
    assert_eq!(old.output, Output::Class(1));
    assert_eq!(new.output, Output::Class(2));
}
