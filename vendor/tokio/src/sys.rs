//! Raw Linux syscalls for the readiness reactor — no libc, consistent
//! with the vendor policy (everything in this tree is built on `std` and
//! `core` only).
//!
//! Only the syscalls the reactor needs are wrapped: `epoll_create1`,
//! `epoll_ctl`, `epoll_pwait`/`epoll_pwait2`, `eventfd2`, plus `read` /
//! `write` / `close` on the eventfd. Each wrapper converts the kernel's
//! `-errno` convention into `io::Result`. Supported targets are
//! `linux-x86_64` and `linux-aarch64`; everything else compiles the
//! timer-backoff fallback instead (this module is cfg'd out).

#![allow(clippy::upper_case_acronyms)]

use std::io;

// ---------------------------------------------------------------------
// Syscall numbers and the raw `syscall` instruction, per architecture.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const WRITEV: usize = 20;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
    pub const EPOLL_PWAIT2: usize = 441;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const WRITEV: usize = 66;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_PWAIT2: usize = 441;
}

/// Issue a raw syscall with up to six arguments.
///
/// # Safety
/// The caller must pass argument values valid for the requested syscall
/// (live pointers with correct lengths, open fds, …) exactly as the
/// kernel ABI requires.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, args: [usize; 6]) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") args[0],
        in("rsi") args[1],
        in("rdx") args[2],
        in("r10") args[3],
        in("r8") args[4],
        in("r9") args[5],
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Issue a raw syscall with up to six arguments.
///
/// # Safety
/// See the x86_64 variant: arguments must satisfy the kernel ABI of the
/// requested syscall.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, args: [usize; 6]) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") args[0] as isize => ret,
        in("x1") args[1],
        in("x2") args[2],
        in("x3") args[3],
        in("x4") args[4],
        in("x5") args[5],
        options(nostack),
    );
    ret
}

/// Map the kernel's `-errno` return convention into `io::Result`.
fn check(ret: isize) -> io::Result<isize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// epoll / eventfd constants and types
// ---------------------------------------------------------------------

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered interest.
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;

const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86_64 (as the kernel
/// UAPI declares it there), naturally aligned everywhere else.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// The kernel's `struct epoll_event` (naturally aligned on this arch).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// The kernel's `struct __kernel_timespec` for `epoll_pwait2`.
#[repr(C)]
#[derive(Clone, Copy)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

// ---------------------------------------------------------------------
// Wrappers
// ---------------------------------------------------------------------

/// `epoll_create1(EPOLL_CLOEXEC)`.
pub fn epoll_create1() -> io::Result<i32> {
    // SAFETY: no pointers; flags are a valid constant.
    let ret = unsafe { syscall6(nr::EPOLL_CREATE1, [EPOLL_CLOEXEC, 0, 0, 0, 0, 0]) };
    check(ret).map(|fd| fd as i32)
}

/// `epoll_ctl(epfd, op, fd, &event)`. `event` is ignored for
/// `EPOLL_CTL_DEL` (a null pointer is passed, valid since Linux 2.6.9).
pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
    let ev_ptr = match &event {
        Some(ev) => ev as *const EpollEvent as usize,
        None => 0,
    };
    // SAFETY: `ev_ptr` is either null (DEL) or points at a live
    // `EpollEvent` that outlives the call; fds are caller-supplied.
    let ret = unsafe {
        syscall6(
            nr::EPOLL_CTL,
            [epfd as usize, op as usize, fd as usize, ev_ptr, 0, 0],
        )
    };
    check(ret).map(|_| ())
}

/// Wait for events. `timeout` of `None` blocks indefinitely. Returns the
/// number of events written into `events`.
///
/// Prefers `epoll_pwait2` (nanosecond timeout — a 500 µs timer deadline
/// must not round up to a whole millisecond); falls back to millisecond
/// `epoll_pwait` if the kernel predates it (< 5.11, ENOSYS) or a
/// deny-unknown-syscall seccomp profile refuses it (EPERM).
pub fn epoll_wait(
    epfd: i32,
    events: &mut [EpollEvent],
    timeout: Option<std::time::Duration>,
) -> io::Result<usize> {
    use std::sync::atomic::{AtomicBool, Ordering};
    static PWAIT2_MISSING: AtomicBool = AtomicBool::new(false);

    if !PWAIT2_MISSING.load(Ordering::Relaxed) {
        let ts = timeout.map(|d| KernelTimespec {
            tv_sec: d.as_secs() as i64,
            tv_nsec: d.subsec_nanos() as i64,
        });
        let ts_ptr = match &ts {
            Some(ts) => ts as *const KernelTimespec as usize,
            None => 0,
        };
        // SAFETY: `events` is a live mutable slice whose length bounds
        // maxevents; `ts_ptr` is null or a live timespec; sigmask is null.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT2,
                [
                    epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    ts_ptr,
                    0,
                    8,
                ],
            )
        };
        match check(ret) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.raw_os_error() == Some(38) || e.raw_os_error() == Some(1) => {
                // ENOSYS: old kernel. EPERM: a deny-unknown-syscall
                // seccomp profile (older Docker defaults) answering a
                // syscall it doesn't know. Either way the call will
                // never work — latch the fallback instead of leaving
                // the driver erroring forever.
                PWAIT2_MISSING.store(true, Ordering::Relaxed);
            }
            Err(e) => return Err(e),
        }
    }

    // Millisecond fallback; ceiling-round so a sub-ms deadline is never
    // truncated into an early wakeup (a zero timeout stays zero — the
    // deadline is already due and the caller fires it on return).
    let timeout_ms: isize = match timeout {
        None => -1,
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as isize,
    };
    // SAFETY: as above; sigmask null, sigsetsize 8.
    let ret = unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            [
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                8,
            ],
        )
    };
    check(ret).map(|n| n as usize)
}

/// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
pub fn eventfd() -> io::Result<i32> {
    // SAFETY: no pointers.
    let ret = unsafe { syscall6(nr::EVENTFD2, [0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0]) };
    check(ret).map(|fd| fd as i32)
}

/// Write the 8-byte counter increment an eventfd expects.
pub fn eventfd_write(fd: i32) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: 8 live bytes at a valid address.
    let ret = unsafe {
        syscall6(
            nr::WRITE,
            [fd as usize, &one as *const u64 as usize, 8, 0, 0, 0],
        )
    };
    check(ret).map(|_| ())
}

/// Drain an eventfd's counter (nonblocking; EAGAIN means already empty).
pub fn eventfd_drain(fd: i32) {
    let mut buf: u64 = 0;
    // SAFETY: 8 live bytes at a valid address.
    let _ = unsafe {
        syscall6(
            nr::READ,
            [fd as usize, &mut buf as *mut u64 as usize, 8, 0, 0, 0],
        )
    };
}

/// Gather-write `bufs` to `fd` in a single `writev(2)` syscall.
///
/// `std::io::IoSlice` is guaranteed ABI-compatible with the kernel's
/// `struct iovec`, so the slice is passed to the kernel as-is — no
/// conversion, no allocation. At most `UIO_MAXIOV` (1024) segments are
/// submitted per call; a short count is a normal partial write and the
/// caller advances and retries. Nonblocking fds report would-block as
/// `EAGAIN` through `check`, which the readiness loop parks on exactly
/// like a plain `write`.
pub fn writev(fd: i32, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    const UIO_MAXIOV: usize = 1024;
    let count = bufs.len().min(UIO_MAXIOV);
    // SAFETY: `bufs` is a live slice of iovec-compatible `IoSlice`s for
    // the duration of the call; `count` never exceeds its length.
    let ret = unsafe {
        syscall6(
            nr::WRITEV,
            [fd as usize, bufs.as_ptr() as usize, count, 0, 0, 0],
        )
    };
    check(ret).map(|n| n as usize)
}

/// `close(fd)`.
pub fn close(fd: i32) {
    // SAFETY: closing an fd the caller owns.
    let _ = unsafe { syscall6(nr::CLOSE, [fd as usize, 0, 0, 0, 0, 0]) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_write_then_drain_round_trips() {
        let fd = eventfd().expect("eventfd");
        eventfd_write(fd).expect("write");
        eventfd_drain(fd);
        close(fd);
    }

    #[test]
    fn writev_gathers_across_buffers() {
        use std::io::Read;
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        let bufs = [io::IoSlice::new(b"hel"), io::IoSlice::new(b"lo")];
        let n = writev(client.as_raw_fd(), &bufs).expect("writev");
        assert_eq!(n, 5);

        let mut got = [0u8; 5];
        (&server).read_exact(&mut got).expect("read");
        assert_eq!(&got, b"hello");
    }

    #[test]
    fn epoll_reports_eventfd_readability() {
        let ep = epoll_create1().expect("epoll_create1");
        let ev = eventfd().expect("eventfd");
        epoll_ctl(
            ep,
            EPOLL_CTL_ADD,
            ev,
            Some(EpollEvent {
                events: EPOLLIN | EPOLLET,
                data: 7,
            }),
        )
        .expect("ctl add");

        // Nothing pending: a zero timeout returns no events.
        let mut events = [EpollEvent::default(); 8];
        let n = epoll_wait(ep, &mut events, Some(std::time::Duration::ZERO)).expect("wait");
        assert_eq!(n, 0);

        eventfd_write(ev).expect("write");
        let n = epoll_wait(ep, &mut events, Some(std::time::Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        let (got_events, got_data) = (events[0].events, events[0].data);
        assert_eq!(got_data, 7);
        assert_ne!(got_events & EPOLLIN, 0);

        epoll_ctl(ep, EPOLL_CTL_DEL, ev, None).expect("ctl del");
        close(ev);
        close(ep);
    }
}
