//! The built-in selection policies.

use super::{weighted_combine, PolicyState, SelectionPolicy};
use crate::types::{output_loss, Feedback, Input, ModelId, Output, PolicyKind};
use std::collections::HashMap;

/// Instantiate the policy for an app's [`PolicyKind`].
pub fn build_policy(kind: &PolicyKind) -> Box<dyn SelectionPolicy> {
    match *kind {
        PolicyKind::Exp3 { eta } => Box::new(Exp3Policy::new(eta)),
        PolicyKind::Exp4 { eta } => Box::new(Exp4Policy::new(eta)),
        PolicyKind::EpsilonGreedy { epsilon } => Box::new(EpsilonGreedyPolicy::new(epsilon)),
        PolicyKind::Ucb1 => Box::new(UcbPolicy),
        PolicyKind::Thompson => Box::new(ThompsonSamplingPolicy),
        PolicyKind::MajorityVote => Box::new(MajorityVotePolicy),
        PolicyKind::Static { model_index } => Box::new(StaticPolicy::new(model_index)),
    }
}

/// Sample an index from `probs` using a uniform draw `u ∈ [0,1)`.
fn sample_from(probs: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len().saturating_sub(1)
}

/// Exp3: the single-model selection policy (§5.1).
///
/// Maintains a weight per model; selects model `i` with probability
/// `pᵢ = (1−γ)·wᵢ/Σw + γ/K`; on feedback updates the selected weight with
/// the importance-weighted exponential rule `wᵢ ← wᵢ·exp(−η·L/pᵢ)`.
///
/// The paper's §5.1 sketch omits the γ-uniform exploration term, but the
/// underlying algorithm it cites (Auer et al. \[6\]) requires it — and so
/// does the Figure-8 behavior: without γ a model whose weight collapsed
/// during a failure would never be re-explored after it heals.
pub struct Exp3Policy {
    eta: f64,
    gamma: f64,
}

impl Exp3Policy {
    /// Create with learning rate `eta` (the paper's η) and the default
    /// exploration fraction γ = 0.1.
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0, "eta must be positive");
        Exp3Policy { eta, gamma: 0.1 }
    }

    /// Override the exploration fraction γ ∈ [0, 1).
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma in [0,1)");
        self.gamma = gamma;
        self
    }

    /// Selection probabilities with γ-uniform mixing.
    fn mixed_probabilities(&self, state: &PolicyState) -> Vec<f64> {
        let k = state.models.len().max(1) as f64;
        state
            .probabilities()
            .into_iter()
            .map(|p| (1.0 - self.gamma) * p + self.gamma / k)
            .collect()
    }

    fn chosen_index(&self, state: &PolicyState, input: &Input) -> usize {
        sample_from(
            &self.mixed_probabilities(state),
            state.derived_uniform(input),
        )
    }
}

impl SelectionPolicy for Exp3Policy {
    fn name(&self) -> &'static str {
        "exp3"
    }

    fn select(&self, state: &PolicyState, input: &Input) -> Vec<ModelId> {
        vec![state.models[self.chosen_index(state, input)].clone()]
    }

    fn combine(
        &self,
        state: &PolicyState,
        input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        let chosen = &state.models[self.chosen_index(state, input)];
        if let Some(out) = preds.get(chosen) {
            return (out.clone(), 1.0);
        }
        // The chosen model's prediction is missing (straggler): fall back
        // to whatever arrived, with zero confidence.
        match weighted_combine(state, preds) {
            Some((out, _)) => (out, 0.0),
            None => (Output::Class(0), 0.0),
        }
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        input: &Input,
        feedback: &Feedback,
        preds: &HashMap<ModelId, Output>,
    ) {
        // Re-derive which arm this query used (select is a pure function
        // of the state at prediction time; feedback that arrives after
        // later observations is an approximation the bandit tolerates).
        let idx = self.chosen_index(state, input);
        let chosen = state.models[idx].clone();
        if let Some(pred) = preds.get(&chosen) {
            let loss = output_loss(pred, &feedback.truth);
            let p = self.mixed_probabilities(state)[idx].max(1e-6);
            state.weights[idx] *= (-self.eta * loss / p).exp();
            state.counts[idx] += 1;
            state.total += 1;
            state.renormalize();
        }
    }
}

/// Exp4: the ensemble selection policy (§5.2).
///
/// Evaluates every model, combines by weighted vote, and decays each
/// model's weight by its own loss: `wᵢ ← wᵢ·exp(−η·Lᵢ)`. Confidence is the
/// weighted fraction of the ensemble agreeing with the final answer
/// (§5.2.1).
pub struct Exp4Policy {
    eta: f64,
}

impl Exp4Policy {
    /// Create with learning rate `eta`.
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0, "eta must be positive");
        Exp4Policy { eta }
    }
}

impl SelectionPolicy for Exp4Policy {
    fn name(&self) -> &'static str {
        "exp4"
    }

    fn select(&self, state: &PolicyState, _input: &Input) -> Vec<ModelId> {
        state.models.clone()
    }

    fn combine(
        &self,
        state: &PolicyState,
        _input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        weighted_combine(state, preds).unwrap_or((Output::Class(0), 0.0))
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        _input: &Input,
        feedback: &Feedback,
        preds: &HashMap<ModelId, Output>,
    ) {
        for (i, model) in state.models.clone().iter().enumerate() {
            if let Some(pred) = preds.get(model) {
                let loss = output_loss(pred, &feedback.truth);
                state.weights[i] *= (-self.eta * loss).exp();
                state.counts[i] += 1;
            }
        }
        state.total += 1;
        state.renormalize();
    }
}

/// ε-greedy single-model selection (extension beyond the paper's two).
///
/// Weights hold running mean rewards (1 − loss); selection exploits the
/// best arm except for an ε fraction of exploration.
pub struct EpsilonGreedyPolicy {
    epsilon: f64,
}

impl EpsilonGreedyPolicy {
    /// Create with exploration probability `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon in [0,1]");
        EpsilonGreedyPolicy { epsilon }
    }

    fn chosen_index(&self, state: &PolicyState, input: &Input) -> usize {
        let u = state.derived_uniform(input);
        let n = state.models.len();
        if u < self.epsilon {
            // Explore: stretch the remaining randomness across the arms.
            let v = u / self.epsilon.max(1e-12);
            ((v * n as f64) as usize).min(n - 1)
        } else {
            // Exploit: best mean reward; unpulled arms (weight 1.0 from
            // init) look optimistic, which is what we want.
            state
                .weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        }
    }
}

impl SelectionPolicy for EpsilonGreedyPolicy {
    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }

    fn select(&self, state: &PolicyState, input: &Input) -> Vec<ModelId> {
        vec![state.models[self.chosen_index(state, input)].clone()]
    }

    fn combine(
        &self,
        state: &PolicyState,
        input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        let chosen = &state.models[self.chosen_index(state, input)];
        if let Some(out) = preds.get(chosen) {
            (out.clone(), 1.0)
        } else {
            weighted_combine(state, preds)
                .map(|(o, _)| (o, 0.0))
                .unwrap_or((Output::Class(0), 0.0))
        }
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        input: &Input,
        feedback: &Feedback,
        preds: &HashMap<ModelId, Output>,
    ) {
        let idx = self.chosen_index(state, input);
        let chosen = state.models[idx].clone();
        if let Some(pred) = preds.get(&chosen) {
            let reward = 1.0 - output_loss(pred, &feedback.truth);
            state.counts[idx] += 1;
            let n = state.counts[idx] as f64;
            if state.counts[idx] == 1 {
                state.weights[idx] = reward;
            } else {
                state.weights[idx] += (reward - state.weights[idx]) / n;
            }
            state.total += 1;
        }
    }
}

/// UCB1 single-model selection (extension).
pub struct UcbPolicy;

impl UcbPolicy {
    fn chosen_index(&self, state: &PolicyState) -> usize {
        // Any unpulled arm first.
        if let Some(i) = state.counts.iter().position(|&c| c == 0) {
            return i;
        }
        let total = state.total.max(1) as f64;
        state
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let bonus = (2.0 * total.ln() / c as f64).sqrt();
                (i, state.weights[i] + bonus)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl SelectionPolicy for UcbPolicy {
    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn select(&self, state: &PolicyState, _input: &Input) -> Vec<ModelId> {
        vec![state.models[self.chosen_index(state)].clone()]
    }

    fn combine(
        &self,
        state: &PolicyState,
        _input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        let chosen = &state.models[self.chosen_index(state)];
        if let Some(out) = preds.get(chosen) {
            (out.clone(), 1.0)
        } else {
            weighted_combine(state, preds)
                .map(|(o, _)| (o, 0.0))
                .unwrap_or((Output::Class(0), 0.0))
        }
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        _input: &Input,
        feedback: &Feedback,
        preds: &HashMap<ModelId, Output>,
    ) {
        let idx = self.chosen_index(state);
        let chosen = state.models[idx].clone();
        if let Some(pred) = preds.get(&chosen) {
            let reward = 1.0 - output_loss(pred, &feedback.truth);
            state.counts[idx] += 1;
            let n = state.counts[idx] as f64;
            if state.counts[idx] == 1 {
                state.weights[idx] = reward;
            } else {
                state.weights[idx] += (reward - state.weights[idx]) / n;
            }
            state.total += 1;
        }
    }
}

/// Thompson sampling single-model selection (extension).
///
/// Each arm keeps a Beta-like posterior over its reward (successes in
/// `weights[i]·counts[i]`, pulls in `counts[i]`); selection draws one
/// posterior sample per arm (Gaussian approximation, derived randomness)
/// and plays the argmax. Converges like UCB but explores
/// probability-matched rather than optimistically.
pub struct ThompsonSamplingPolicy;

impl ThompsonSamplingPolicy {
    fn chosen_index(&self, state: &PolicyState, input: &Input) -> usize {
        // Unpulled arms first, in order.
        if let Some(i) = state.counts.iter().position(|&c| c == 0) {
            return i;
        }
        let base = state.derived_uniform(input);
        let mut best = 0usize;
        let mut best_sample = f64::NEG_INFINITY;
        for (i, (&mean, &n)) in state.weights.iter().zip(state.counts.iter()).enumerate() {
            // Two derived uniforms per arm → one Gaussian via Box-Muller.
            let u1 = fract(base * 7919.0 + i as f64 * 13.37 + 0.123);
            let u2 = fract(base * 104729.0 + i as f64 * 7.77 + 0.456);
            let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let std = (mean.clamp(0.01, 0.99) * (1.0 - mean.clamp(0.01, 0.99)) / n as f64).sqrt();
            let sample = mean + std * z;
            if sample > best_sample {
                best_sample = sample;
                best = i;
            }
        }
        best
    }
}

/// Fractional part in [0, 1).
fn fract(x: f64) -> f64 {
    let f = x.fract();
    if f < 0.0 {
        f + 1.0
    } else {
        f
    }
}

impl SelectionPolicy for ThompsonSamplingPolicy {
    fn name(&self) -> &'static str {
        "thompson"
    }

    fn select(&self, state: &PolicyState, input: &Input) -> Vec<ModelId> {
        vec![state.models[self.chosen_index(state, input)].clone()]
    }

    fn combine(
        &self,
        state: &PolicyState,
        input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        let chosen = &state.models[self.chosen_index(state, input)];
        if let Some(out) = preds.get(chosen) {
            (out.clone(), 1.0)
        } else {
            weighted_combine(state, preds)
                .map(|(o, _)| (o, 0.0))
                .unwrap_or((Output::Class(0), 0.0))
        }
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        input: &Input,
        feedback: &Feedback,
        preds: &HashMap<ModelId, Output>,
    ) {
        let idx = self.chosen_index(state, input);
        let chosen = state.models[idx].clone();
        if let Some(pred) = preds.get(&chosen) {
            let reward = 1.0 - output_loss(pred, &feedback.truth);
            state.counts[idx] += 1;
            let n = state.counts[idx] as f64;
            if state.counts[idx] == 1 {
                state.weights[idx] = reward;
            } else {
                state.weights[idx] += (reward - state.weights[idx]) / n;
            }
            state.total += 1;
        }
    }
}

/// Unweighted ensemble voting (no learning) — the static-ensemble baseline
/// in Figures 7 and 9.
pub struct MajorityVotePolicy;

impl SelectionPolicy for MajorityVotePolicy {
    fn name(&self) -> &'static str {
        "majority-vote"
    }

    fn select(&self, state: &PolicyState, _input: &Input) -> Vec<ModelId> {
        state.models.clone()
    }

    fn combine(
        &self,
        state: &PolicyState,
        _input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        // Equal weights regardless of learned state.
        let uniform = PolicyState::uniform(&state.models, state.seed);
        weighted_combine(&uniform, preds).unwrap_or((Output::Class(0), 0.0))
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        _input: &Input,
        _feedback: &Feedback,
        _preds: &HashMap<ModelId, Output>,
    ) {
        state.total += 1;
    }
}

/// A single fixed model — what static deployment (offline evaluation /
/// A/B testing) would pick.
pub struct StaticPolicy {
    model_index: usize,
}

impl StaticPolicy {
    /// Always use the model at `model_index` in the app's candidate list.
    pub fn new(model_index: usize) -> Self {
        StaticPolicy { model_index }
    }
}

impl SelectionPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn select(&self, state: &PolicyState, _input: &Input) -> Vec<ModelId> {
        let idx = self.model_index.min(state.models.len().saturating_sub(1));
        vec![state.models[idx].clone()]
    }

    fn combine(
        &self,
        state: &PolicyState,
        _input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64) {
        let idx = self.model_index.min(state.models.len().saturating_sub(1));
        match preds.get(&state.models[idx]) {
            Some(out) => (out.clone(), 1.0),
            None => (Output::Class(0), 0.0),
        }
    }

    fn observe(
        &self,
        state: &mut PolicyState,
        _input: &Input,
        _feedback: &Feedback,
        _preds: &HashMap<ModelId, Output>,
    ) {
        state.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn models(n: usize) -> Vec<ModelId> {
        (0..n).map(|i| ModelId::new(&format!("m{i}"), 1)).collect()
    }

    fn input(seed: u64) -> Input {
        Arc::new(vec![seed as f32, (seed * 31) as f32])
    }

    /// Drive a policy with feedback where `good_model` is always right and
    /// everyone else always wrong. Returns the fraction of the last
    /// `window` selections that pick the good model.
    fn converges_to(policy: &dyn SelectionPolicy, n_models: usize, good: usize) -> f64 {
        let ms = models(n_models);
        let mut state = policy.init(&ms, 42);
        let rounds = 600;
        let window = 200;
        let mut hits = 0;
        for r in 0..rounds {
            let x = input(r);
            let selected = policy.select(&state, &x);
            // Build predictions for the selected models: the good model
            // answers 1 (the truth), others answer 0.
            let mut preds = HashMap::new();
            for m in &selected {
                let idx = ms.iter().position(|mm| mm == m).unwrap();
                let out = if idx == good {
                    Output::Class(1)
                } else {
                    Output::Class(0)
                };
                preds.insert(m.clone(), out);
            }
            if r >= rounds - window {
                let (out, _) = policy.combine(&state, &x, &preds);
                if out == Output::Class(1) {
                    hits += 1;
                }
            }
            policy.observe(&mut state, &x, &Feedback::class(1), &preds);
        }
        hits as f64 / window as f64
    }

    #[test]
    fn exp3_converges_to_the_best_model() {
        let acc = converges_to(&Exp3Policy::new(0.3), 5, 3);
        assert!(acc > 0.8, "exp3 late accuracy {acc}");
    }

    #[test]
    fn exp4_converges_to_the_best_model() {
        let acc = converges_to(&Exp4Policy::new(0.3), 5, 2);
        assert!(acc > 0.9, "exp4 late accuracy {acc}");
    }

    #[test]
    fn epsilon_greedy_converges() {
        let acc = converges_to(&EpsilonGreedyPolicy::new(0.1), 5, 0);
        assert!(acc > 0.7, "ε-greedy late accuracy {acc}");
    }

    #[test]
    fn ucb_converges() {
        let acc = converges_to(&UcbPolicy, 5, 4);
        assert!(acc > 0.7, "ucb late accuracy {acc}");
    }

    #[test]
    fn thompson_converges() {
        let acc = converges_to(&ThompsonSamplingPolicy, 5, 2);
        assert!(acc > 0.7, "thompson late accuracy {acc}");
    }

    #[test]
    fn thompson_pulls_every_arm_once_first() {
        let p = ThompsonSamplingPolicy;
        let ms = models(4);
        let mut s = p.init(&ms, 3);
        let mut pulled = std::collections::HashSet::new();
        for r in 0..4 {
            let x = input(r);
            let chosen = p.select(&s, &x)[0].clone();
            pulled.insert(chosen.clone());
            let mut preds = HashMap::new();
            preds.insert(chosen, Output::Class(1));
            p.observe(&mut s, &x, &Feedback::class(1), &preds);
        }
        assert_eq!(pulled.len(), 4, "initial round-robin over unpulled arms");
    }

    #[test]
    fn exp3_selects_exactly_one_model() {
        let p = Exp3Policy::new(0.1);
        let s = p.init(&models(4), 0);
        assert_eq!(p.select(&s, &input(1)).len(), 1);
    }

    #[test]
    fn exp4_selects_every_model() {
        let p = Exp4Policy::new(0.1);
        let s = p.init(&models(4), 0);
        assert_eq!(p.select(&s, &input(1)).len(), 4);
    }

    #[test]
    fn exp4_confidence_reflects_agreement() {
        let p = Exp4Policy::new(0.1);
        let s = p.init(&models(4), 0);
        let mut preds = HashMap::new();
        for (i, m) in s.models.iter().enumerate() {
            preds.insert(m.clone(), Output::Class(if i < 3 { 7 } else { 8 }));
        }
        let (out, conf) = p.combine(&s, &input(1), &preds);
        assert_eq!(out, Output::Class(7));
        assert!((conf - 0.75).abs() < 1e-9);
    }

    #[test]
    fn exp3_weight_drops_after_bad_feedback() {
        let p = Exp3Policy::new(0.5);
        let ms = models(2);
        let mut s = p.init(&ms, 1);
        // Find an input whose derived choice is model 0.
        let mut x = input(0);
        for i in 0.. {
            x = input(i);
            if p.select(&s, &x)[0] == ms[0] {
                break;
            }
        }
        let mut preds = HashMap::new();
        preds.insert(ms[0].clone(), Output::Class(0));
        let w_before = s.probabilities()[0];
        p.observe(&mut s, &x, &Feedback::class(1), &preds); // wrong answer
        let w_after = s.probabilities()[0];
        assert!(
            w_after < w_before,
            "mispredicting arm must lose probability: {w_before} -> {w_after}"
        );
    }

    #[test]
    fn static_policy_ignores_feedback() {
        let p = StaticPolicy::new(1);
        let ms = models(3);
        let mut s = p.init(&ms, 0);
        let x = input(3);
        assert_eq!(p.select(&s, &x), vec![ms[1].clone()]);
        let mut preds = HashMap::new();
        preds.insert(ms[1].clone(), Output::Class(5));
        p.observe(&mut s, &x, &Feedback::class(9), &preds);
        assert_eq!(p.select(&s, &x), vec![ms[1].clone()]);
        let (out, conf) = p.combine(&s, &x, &preds);
        assert_eq!(out, Output::Class(5));
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn static_policy_clamps_out_of_range_index() {
        let p = StaticPolicy::new(99);
        let s = p.init(&models(2), 0);
        assert_eq!(p.select(&s, &input(1))[0], s.models[1]);
    }

    #[test]
    fn majority_vote_ignores_learned_weights() {
        let p = MajorityVotePolicy;
        let ms = models(3);
        let mut s = p.init(&ms, 0);
        s.weights = vec![100.0, 1.0, 1.0]; // would dominate a weighted vote
        let mut preds = HashMap::new();
        preds.insert(ms[0].clone(), Output::Class(1));
        preds.insert(ms[1].clone(), Output::Class(2));
        preds.insert(ms[2].clone(), Output::Class(2));
        let (out, conf) = p.combine(&s, &input(1), &preds);
        assert_eq!(out, Output::Class(2), "majority, not weight, wins");
        assert!((conf - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn build_policy_maps_kinds() {
        assert_eq!(build_policy(&PolicyKind::Exp3 { eta: 0.1 }).name(), "exp3");
        assert_eq!(build_policy(&PolicyKind::Exp4 { eta: 0.1 }).name(), "exp4");
        assert_eq!(
            build_policy(&PolicyKind::EpsilonGreedy { epsilon: 0.1 }).name(),
            "epsilon-greedy"
        );
        assert_eq!(build_policy(&PolicyKind::Ucb1).name(), "ucb1");
        assert_eq!(build_policy(&PolicyKind::Thompson).name(), "thompson");
        assert_eq!(
            build_policy(&PolicyKind::MajorityVote).name(),
            "majority-vote"
        );
        assert_eq!(
            build_policy(&PolicyKind::Static { model_index: 0 }).name(),
            "static"
        );
    }

    #[test]
    fn exp4_recovers_when_degraded_model_heals() {
        // Miniature Figure 8: model 1 is best, degrades, recovers.
        let p = Exp4Policy::new(0.4);
        let ms = models(2);
        let mut s = p.init(&ms, 3);
        let phase = |s: &mut PolicyState, rounds: u64, m1_good: bool, start: u64| {
            for r in 0..rounds {
                let x = input(start + r);
                let truth_label = (r % 2) as u32;
                let mut preds = HashMap::new();
                // Model 0 always answers 0: right 50% of the time.
                preds.insert(ms[0].clone(), Output::Class(0));
                // Model 1 answers the truth when healthy (100%), and the
                // opposite when degraded (0%).
                let m1_answer = if m1_good {
                    truth_label
                } else {
                    1 - truth_label
                };
                preds.insert(ms[1].clone(), Output::Class(m1_answer));
                p.observe(s, &x, &Feedback::class(truth_label), &preds);
            }
        };
        phase(&mut s, 200, true, 0);
        let w_good = s.probabilities()[1];
        phase(&mut s, 200, false, 1_000);
        let w_degraded = s.probabilities()[1];
        phase(&mut s, 400, true, 2_000);
        let w_recovered = s.probabilities()[1];
        assert!(w_good > 0.6, "initially dominant: {w_good}");
        assert!(w_degraded < w_good, "degradation sheds weight");
        assert!(w_recovered > w_degraded, "recovery regains weight");
    }
}
