//! Minimal dense linear-algebra helpers.
//!
//! Deliberately simple loops: the point of this substrate is computational
//! *shape* (a linear model is a dot product; an MLP is a few mat-vecs), not
//! peak FLOPs. Everything operates on `f32` slices.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x`, elementwise.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Squared Euclidean distance.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Index of the maximum element; ties break to the lowest index.
/// Returns 0 for an empty slice.
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// In-place numerically-stable softmax.
pub fn softmax(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Indices of the `k` largest elements, descending by value.
pub fn top_k(xs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[b]
            .partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn sq_dist_is_zero_for_identical() {
        let v = vec![0.5f32; 16];
        assert_eq!(sq_dist(&v, &v), 0.0);
        assert_eq!(sq_dist(&[0.0], &[3.0]), 9.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let mut xs = vec![1000.0, 1001.0];
        softmax(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn top_k_returns_descending_indices() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k(&xs, 2), vec![1, 3]);
        assert_eq!(top_k(&xs, 10).len(), 4);
    }
}
