//! What a container computes (separately from how long it takes).

use clipper_ml::models::Model;
use clipper_ml::speech::{DialectModel, Utterance};
use clipper_rpc::message::WireOutput;
use clipper_rpc::transport::Input;
use std::sync::Arc;

/// The prediction function a container hosts.
#[derive(Clone)]
pub enum ContainerLogic {
    /// A classifier returning its argmax label.
    Classifier(Arc<dyn Model>),
    /// A classifier returning its full score vector.
    Scorer(Arc<dyn Model>),
    /// A speech model transcribing flattened utterances to label sequences.
    Transcriber(Arc<DialectModel>),
    /// A constant answer (the No-Op container of Figure 3d).
    Fixed(WireOutput),
}

impl ContainerLogic {
    /// Evaluate a whole batch of shared feature vectors, preserving order.
    pub fn evaluate(&self, inputs: &[Input]) -> Vec<WireOutput> {
        match self {
            ContainerLogic::Classifier(m) => {
                let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
                m.predict_batch(&refs)
                    .into_iter()
                    .map(WireOutput::Class)
                    .collect()
            }
            ContainerLogic::Scorer(m) => {
                let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
                m.scores_batch(&refs)
                    .into_iter()
                    .map(WireOutput::Scores)
                    .collect()
            }
            ContainerLogic::Transcriber(m) => inputs
                .iter()
                .map(|flat| {
                    let frames = Utterance::unflatten(flat);
                    WireOutput::Labels(m.transcribe(&frames))
                })
                .collect(),
            ContainerLogic::Fixed(out) => vec![out.clone(); inputs.len()],
        }
    }

    /// Short description for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            ContainerLogic::Classifier(_) => "classifier",
            ContainerLogic::Scorer(_) => "scorer",
            ContainerLogic::Transcriber(_) => "transcriber",
            ContainerLogic::Fixed(_) => "fixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipper_ml::models::NoOpModel;
    use clipper_rpc::transport::as_inputs;

    #[test]
    fn fixed_logic_replicates_answer() {
        let l = ContainerLogic::Fixed(WireOutput::Class(7));
        let out = l.evaluate(&as_inputs(vec![vec![0.0], vec![1.0], vec![2.0]]));
        assert_eq!(out, vec![WireOutput::Class(7); 3]);
        assert_eq!(l.kind(), "fixed");
    }

    #[test]
    fn classifier_logic_returns_labels() {
        let l = ContainerLogic::Classifier(Arc::new(NoOpModel::new(5)));
        let out = l.evaluate(&as_inputs(vec![vec![0.0; 4]; 2]));
        assert_eq!(out, vec![WireOutput::Class(0); 2]);
    }

    #[test]
    fn scorer_logic_returns_score_vectors() {
        let l = ContainerLogic::Scorer(Arc::new(NoOpModel::new(3)));
        let out = l.evaluate(&as_inputs(vec![vec![0.0]]));
        match &out[0] {
            WireOutput::Scores(s) => assert_eq!(s.len(), 3),
            other => panic!("expected scores, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let l = ContainerLogic::Fixed(WireOutput::Class(0));
        assert!(l.evaluate(&[]).is_empty());
    }
}
