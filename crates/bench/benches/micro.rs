//! Criterion micro-benchmarks for the hot paths of the serving stack:
//! cache operations, batching controllers, the RPC wire codec, selection
//! policies, histograms, and the statestore.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use clipper_core::batching::{AimdController, BatchController, QuantileController};
use clipper_core::cache::{CacheKey, PredictionCache};
use clipper_core::selection::SelectionPolicy;
use clipper_core::{Exp3Policy, Exp4Policy, Feedback, ModelId, Output};
use clipper_metrics::Histogram;
use clipper_rpc::message::{Message, PredictReply, WireOutput};
use clipper_statestore::StateStore;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.measurement_time(Duration::from_secs(2));

    let cache = PredictionCache::new(4_096);
    let model = ModelId::new("m", 1);
    let hot: clipper_core::Input = Arc::new(vec![1.0; 784]);
    let hot_key = CacheKey::new(&model, &hot);
    cache.fill(hot_key, Ok(Output::Class(1)));
    g.bench_function("hit_784d_prebuilt_key", |b| {
        b.iter(|| black_box(cache.fetch(black_box(hot_key))))
    });

    let cold: clipper_core::Input = Arc::new(vec![2.0; 784]);
    let cold_key = CacheKey::new(&model, &cold);
    g.bench_function("miss_784d_prebuilt_key", |b| {
        b.iter(|| black_box(cache.fetch(black_box(cold_key))))
    });

    // The full per-predict probe cost: one single-pass key build plus one
    // shard probe (the old design hashed the input twice per key and built
    // the key twice on a miss).
    let x256: clipper_core::Input = Arc::new(vec![0.5; 256]);
    g.bench_function("key_build_256d", |b| {
        b.iter(|| black_box(CacheKey::new(&model, black_box(&x256))))
    });
    g.bench_function("probe_256d_key_plus_fetch", |b| {
        b.iter(|| {
            let key = CacheKey::new(&model, black_box(&x256));
            black_box(cache.fetch(key))
        })
    });

    g.bench_function("fill_with_eviction", |b| {
        let small = PredictionCache::new(64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = CacheKey::from_fingerprint(i.wrapping_mul(0x9E3779B97F4A7C15), i);
            small.fill(key, Ok(Output::Class(0)));
        })
    });
    g.finish();
}

fn bench_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("batching");
    g.measurement_time(Duration::from_secs(2));
    let slo = Duration::from_millis(20);

    g.bench_function("aimd_record", |b| {
        let mut ctl = AimdController::with_defaults(slo);
        b.iter(|| {
            let batch = ctl.max_batch();
            ctl.record(batch, Duration::from_micros(1_000 + 20 * batch as u64));
            black_box(ctl.max_batch())
        })
    });

    g.bench_function("quantile_record", |b| {
        let mut ctl = QuantileController::new(slo, 4_096);
        b.iter(|| {
            let batch = ctl.max_batch();
            ctl.record(batch, Duration::from_micros(1_000 + 20 * batch as u64));
            black_box(ctl.max_batch())
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc_codec");
    g.measurement_time(Duration::from_secs(2));

    let batch_msg = Message::PredictRequest {
        inputs: clipper_rpc::as_inputs(vec![vec![0.5f32; 784]; 64]),
    };
    g.bench_function("encode_64x784", |b| {
        b.iter(|| black_box(batch_msg.encode(7)))
    });

    // Steady-state encode into a retained connection buffer (the path
    // FrameWriter takes): no allocation per frame.
    let mut out = Vec::with_capacity(batch_msg.wire_size());
    g.bench_function("encode_into_64x784", |b| {
        b.iter(|| {
            out.clear();
            batch_msg.encode_into(7, &mut out);
            black_box(out.len())
        })
    });

    let frame = batch_msg.encode(7);
    g.bench_function("decode_64x784", |b| {
        b.iter(|| black_box(Message::decode(3, black_box(&frame[18..])).unwrap()))
    });

    let reply = Message::PredictResponse(PredictReply {
        outputs: vec![WireOutput::Class(3); 64],
        queue_us: 10,
        compute_us: 20,
    });
    g.bench_function("encode_reply_64", |b| b.iter(|| black_box(reply.encode(7))));
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    g.measurement_time(Duration::from_secs(2));

    let ids: Vec<ModelId> = (0..5).map(|i| ModelId::new(&format!("m{i}"), 1)).collect();
    let input: clipper_core::Input = Arc::new(vec![1.0; 32]);
    let mut preds: HashMap<ModelId, Output> = HashMap::new();
    for (i, id) in ids.iter().enumerate() {
        preds.insert(id.clone(), Output::Class((i % 2) as u32));
    }

    let exp3 = Exp3Policy::new(0.1);
    let s3 = exp3.init(&ids, 1);
    g.bench_function("exp3_select", |b| {
        b.iter(|| black_box(exp3.select(&s3, &input)))
    });
    g.bench_function("exp3_observe", |b| {
        b.iter_batched(
            || s3.clone(),
            |mut s| {
                exp3.observe(&mut s, &input, &Feedback::class(1), &preds);
                black_box(s)
            },
            BatchSize::SmallInput,
        )
    });

    let exp4 = Exp4Policy::new(0.1);
    let s4 = exp4.init(&ids, 1);
    g.bench_function("exp4_combine", |b| {
        b.iter(|| black_box(exp4.combine(&s4, &input, &preds)))
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.measurement_time(Duration::from_secs(2));
    let h = Histogram::new();
    let mut i = 0u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            i = i.wrapping_add(997);
            h.record(black_box(i % 1_000_000));
        })
    });
    for v in 0..100_000u64 {
        h.record(v * 7 % 1_000_000);
    }
    g.bench_function("histogram_snapshot_p99", |b| {
        b.iter(|| black_box(h.snapshot().p99()))
    });
    g.finish();
}

fn bench_statestore(c: &mut Criterion) {
    let mut g = c.benchmark_group("statestore");
    g.measurement_time(Duration::from_secs(2));
    let store = StateStore::new();
    store.set("policy", vec![0u8; 256]);
    g.bench_function("get_256b", |b| b.iter(|| black_box(store.get("policy"))));
    let mut i = 0u64;
    g.bench_function("set_256b", |b| {
        b.iter(|| {
            i += 1;
            store.set(&format!("k{}", i % 1_024), vec![0u8; 256])
        })
    });
    g.bench_function("cas_cycle", |b| {
        b.iter(|| {
            let (_, v) = store.get_versioned("policy").unwrap();
            black_box(store.cas("policy", v, vec![1u8; 256]))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_batching,
    bench_codec,
    bench_policies,
    bench_metrics,
    bench_statestore
);
criterion_main!(benches);
