//! Control-plane integration tests, driven end-to-end through the HTTP
//! API: app CRUD round-trips, model-version rollout/rollback under
//! sustained open-loop traffic with zero dropped predictions, and
//! registry rehydration from the statestore after a frontend restart.

use clipper::core::api::{self, AppRecord};
use clipper::core::{AppConfig, BatchConfig, Clipper, HttpFrontend, ModelId, PolicyKind};
use clipper::rpc::message::{PredictReply, WireOutput};
use clipper::rpc::transport::{BatchTransport, FnTransport, Input};
use clipper::statestore::StateStore;
use clipper::workload::{run_open_loop_with_churn, ArrivalProcess, ChurnAction, RequestOutcome};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// A transport answering a constant label.
fn const_transport(label: u32) -> Arc<dyn BatchTransport> {
    Arc::new(FnTransport::new(
        &format!("const-{label}"),
        move |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(label); inputs.len()],
                queue_us: 0,
                compute_us: 20,
            })
        },
    ))
}

/// Issue one HTTP request on a fresh connection; return (status, body).
async fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    clipper::workload::http_request(addr, method, path, body)
        .await
        .expect("http request")
}

/// Stand up a Clipper with model `m` v1 (label 1) + v2 (label 2) and an
/// app `digits` pointed at v1, behind an HTTP frontend.
async fn start_two_version_deployment(store: Option<Arc<StateStore>>) -> (HttpFrontend, Clipper) {
    let mut builder = Clipper::builder();
    if let Some(store) = store {
        builder = builder.statestore(store);
    }
    let clipper = builder.build();
    let v1 = ModelId::new("m", 1);
    let v2 = ModelId::new("m", 2);
    clipper.add_model(v1.clone(), BatchConfig::default());
    clipper.add_replica(&v1, const_transport(1)).unwrap();
    clipper.add_model(v2.clone(), BatchConfig::default());
    clipper.add_replica(&v2, const_transport(2)).unwrap();
    clipper.register_app(
        AppConfig::new("digits", vec![v1])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(100)),
    );
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .unwrap();
    (frontend, clipper)
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn http_crud_round_trip_and_error_taxonomy() {
    let (frontend, _clipper) = start_two_version_deployment(None).await;
    let addr = frontend.local_addr();

    // Unknown app over the data plane: 404 (regression — used to be 500).
    let (status, body) = http(addr, "POST", "/apps/ghost/predict", "{\"input\":[1.0]}").await;
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"code\":\"app_unknown\""), "{body}");

    // Register a second app over HTTP.
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/apps",
        "{\"name\":\"pets\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}],\"slo_ms\":40,\"policy\":{\"Static\":{\"model_index\":0}}}",
    )
    .await;
    assert_eq!(status, 201, "{body}");

    // Registering against an unknown model is a 404, not a silent accept.
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/apps",
        "{\"name\":\"bad\",\"candidate_models\":[{\"name\":\"nope\",\"version\":1}]}",
    )
    .await;
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("model_unknown"), "{body}");

    // Read back, PATCH, and observe the update.
    let (status, body) = http(addr, "GET", "/api/v1/apps/pets", "").await;
    assert_eq!(status, 200);
    assert!(body.contains("\"slo_ms\":40"), "{body}");
    let (status, body) = http(addr, "PATCH", "/api/v1/apps/pets", "{\"slo_ms\":80}").await;
    assert_eq!(status, 200, "{body}");
    let (_, body) = http(addr, "GET", "/api/v1/apps/pets", "").await;
    assert!(body.contains("\"slo_ms\":80"), "{body}");

    // The HTTP-registered app serves predictions.
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/apps/pets/predict",
        "{\"input\":[3.0]}",
    )
    .await;
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"label\":1"), "{body}");

    // DELETE unregisters; further predicts 404.
    let (status, _) = http(addr, "DELETE", "/api/v1/apps/pets", "").await;
    assert_eq!(status, 200);
    let (status, _) = http(
        addr,
        "POST",
        "/api/v1/apps/pets/predict",
        "{\"input\":[3.0]}",
    )
    .await;
    assert_eq!(status, 404);

    // Model catalog lists the version directory.
    let (status, body) = http(addr, "GET", "/api/v1/models/m", "").await;
    assert_eq!(status, 200);
    assert!(body.contains("\"current_version\":1"), "{body}");
    assert!(body.contains("\"versions\":[1,2]"), "{body}");
}

/// The acceptance scenario: a rollout issued over `POST
/// /api/v1/models/{name}/rollout` while the workload driver sustains
/// open-loop traffic completes with 0 dropped predictions and 0 pending
/// cache entries; subsequent predicts are served by the new version; a
/// rollback restores the old one. Everything flows through the HTTP API.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn rollout_and_rollback_mid_traffic_drop_nothing() {
    let (frontend, clipper) = start_two_version_deployment(None).await;
    let addr = frontend.local_addr();

    let rollout_addr = addr;
    let rollback_addr = addr;
    let report = run_open_loop_with_churn(
        ArrivalProcess::Uniform { rate: 150.0 },
        Duration::from_millis(1_500),
        11,
        move |seq| async move {
            // Distinct inputs so the prediction cache can't mask which
            // version served the query.
            let body = format!("{{\"input\":[{seq}.0, 0.5]}}");
            let (status, _body) = http(addr, "POST", "/apps/digits/predict", &body).await;
            match status {
                200 => RequestOutcome::Ok,
                429 => RequestOutcome::Shed,
                _ => RequestOutcome::Error,
            }
        },
        vec![
            ChurnAction::at(Duration::from_millis(400), "rollout m→v2", async move {
                let (status, body) = http(
                    rollout_addr,
                    "POST",
                    "/api/v1/models/m/rollout",
                    "{\"version\":2}",
                )
                .await;
                if status == 200 {
                    Ok(body)
                } else {
                    Err(format!("rollout failed: {status} {body}"))
                }
            }),
            ChurnAction::at(Duration::from_millis(900), "rollback m→v1", async move {
                let (status, body) =
                    http(rollback_addr, "POST", "/api/v1/models/m/rollback", "").await;
                if status == 200 {
                    Ok(body)
                } else {
                    Err(format!("rollback failed: {status} {body}"))
                }
            }),
        ],
    )
    .await;

    for action in &report.actions {
        assert!(
            action.result.is_ok(),
            "{} must succeed: {:?}",
            action.label,
            action.result
        );
    }
    assert_eq!(
        report.load.errors, 0,
        "churn must drop nothing: {} errors / {} completed",
        report.load.errors, report.load.completed
    );
    assert_eq!(report.load.shed, 0, "churn must shed nothing");
    assert!(
        report.load.completed > 100,
        "traffic actually flowed: {}",
        report.load.completed
    );
    assert_eq!(
        clipper.abstraction().cache().pending_len(),
        0,
        "no pending cache entry survives the churn"
    );

    // After rollout+rollback the current version is 1 again and serves.
    let (status, body) = http(addr, "GET", "/api/v1/models/m", "").await;
    assert_eq!(status, 200);
    assert!(body.contains("\"current_version\":1"), "{body}");
    let (status, body) = http(
        addr,
        "POST",
        "/apps/digits/predict",
        "{\"input\":[77777.0]}",
    )
    .await;
    assert_eq!(status, 200);
    assert!(body.contains("\"label\":1"), "served by v1 again: {body}");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn rollout_switches_served_version_over_http() {
    let (frontend, _clipper) = start_two_version_deployment(None).await;
    let addr = frontend.local_addr();
    let (_, body) = http(addr, "POST", "/apps/digits/predict", "{\"input\":[10.0]}").await;
    assert!(body.contains("\"label\":1"), "{body}");
    let (status, body) = http(addr, "POST", "/api/v1/models/m/rollout", "{\"version\":2}").await;
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"repointed_apps\":[\"digits\"]"), "{body}");
    let (_, body) = http(addr, "POST", "/apps/digits/predict", "{\"input\":[11.0]}").await;
    assert!(body.contains("\"label\":2"), "new version serves: {body}");
    // Rolling out the already-current version is a typed 409.
    let (status, body) = http(addr, "POST", "/api/v1/models/m/rollout", "{\"version\":2}").await;
    assert_eq!(status, 409);
    assert!(body.contains("already_current"), "{body}");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn registry_rehydrates_into_a_fresh_frontend() {
    let store = Arc::new(StateStore::new());
    {
        let (frontend, _clipper) = start_two_version_deployment(Some(store.clone())).await;
        let addr = frontend.local_addr();
        // Mutate config over HTTP so what persists is what the control
        // plane wrote: register an app, roll the model forward.
        let (status, _) = http(
            addr,
            "POST",
            "/api/v1/apps",
            "{\"name\":\"pets\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}],\"slo_ms\":64}",
        )
        .await;
        assert_eq!(status, 201, "create ok");
        let (status, _) = http(addr, "POST", "/api/v1/models/m/rollout", "{\"version\":2}").await;
        assert_eq!(status, 200);
        // Frontend and Clipper drop here — the "restart".
    }

    let revived = Clipper::builder().statestore(store.clone()).build();
    let report = revived.rehydrate();
    assert_eq!(report.models, 1);
    assert_eq!(report.apps, 2, "digits + pets");
    assert!(report.skipped.is_empty());
    assert_eq!(revived.current_version("m"), Some(2));
    // Both apps were repointed at v2 by the persisted rollout.
    for app in ["digits", "pets"] {
        let cfg = revived.app_config(app).expect("app rehydrated");
        assert_eq!(cfg.candidate_models, vec![ModelId::new("m", 2)]);
    }
    // Re-attach a replica and serve over a fresh frontend.
    revived
        .add_replica(&ModelId::new("m", 2), const_transport(2))
        .unwrap();
    let frontend = HttpFrontend::bind("127.0.0.1:0", revived.clone())
        .await
        .unwrap();
    let (status, body) = http(
        frontend.local_addr(),
        "POST",
        "/apps/digits/predict",
        "{\"input\":[1.0]}",
    )
    .await;
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"label\":2"), "{body}");

    // The persisted record itself is well-formed JSON of the API shape.
    let bytes = store.get(&api::app_key("pets")).expect("record present");
    let rec: AppRecord = serde_json::from_slice(&bytes).expect("record parses");
    assert_eq!(rec.slo_ms, 64);
}
