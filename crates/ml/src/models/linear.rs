//! Linear models: multinomial logistic regression and one-vs-rest linear SVM.
//!
//! Both predict with one dense dot product per class — the "fast" end of
//! Figure 3's latency spectrum. Training is plain SGD; determinism comes
//! from the caller-provided seed.

use super::Model;
use crate::datasets::Dataset;
use crate::linalg::{axpy, dot, softmax};
use rand::prelude::*;

/// Rocchio-style warm start shared by both linear models: initialize each
/// one-vs-rest separator at the nearest-centroid discriminant
/// (w = 2·m̂_c, b = -‖m̂_c‖²), rescaled so initial |scores| are O(1). In
/// the high-dimensional low-sample regime this is close to the Bayes
/// direction, and SGD then refines margins/calibration instead of having
/// to find the direction from scratch.
fn rocchio_init(dataset: &Dataset, k: usize, d: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let mut weights = vec![vec![0.0f32; d]; k];
    let mut bias = vec![0.0f32; k];
    let mut counts = vec![0usize; k];
    for ex in &dataset.train {
        counts[ex.y as usize] += 1;
        for (w, &x) in weights[ex.y as usize].iter_mut().zip(ex.x.iter()) {
            *w += x;
        }
    }
    for c in 0..k {
        let n = counts[c].max(1) as f32;
        for w in weights[c].iter_mut() {
            *w = 2.0 * *w / n;
        }
        bias[c] = -weights[c].iter().map(|w| w * w).sum::<f32>() / 4.0;
    }
    let mut score_sum = 0.0f32;
    let mut score_n = 0usize;
    for ex in dataset.train.iter().take(50) {
        for c in 0..k {
            score_sum += (dot(&weights[c], &ex.x) + bias[c]).abs();
            score_n += 1;
        }
    }
    if score_sum > 0.0 {
        let beta = score_n as f32 / score_sum;
        for c in 0..k {
            for w in weights[c].iter_mut() {
                *w *= beta;
            }
            bias[c] *= beta;
        }
    }
    (weights, bias)
}

/// Hyperparameters for [`LogisticRegression::train`].
#[derive(Clone, Debug)]
pub struct LogisticRegressionConfig {
    /// SGD epochs over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub l2: f32,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            epochs: 5,
            lr: 0.5,
            l2: 1e-4,
        }
    }
}

/// Multinomial (softmax) logistic regression.
pub struct LogisticRegression {
    name: String,
    /// Row-major weights: `num_classes` rows of `num_features`.
    weights: Vec<Vec<f32>>,
    bias: Vec<f32>,
}

impl LogisticRegression {
    /// Train with softmax cross-entropy SGD on the dataset's train split,
    /// warm-started from the Rocchio centroid discriminant (the same init
    /// [`LinearSvm::train`] uses) so SGD refines calibration instead of
    /// finding the class directions from scratch.
    pub fn train(dataset: &Dataset, cfg: &LogisticRegressionConfig, seed: u64) -> Self {
        let k = dataset.num_classes();
        let d = dataset.num_features();
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut weights, mut bias) = rocchio_init(dataset, k, d);

        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let ex = &dataset.train[i];
                let mut scores: Vec<f32> = weights
                    .iter()
                    .zip(bias.iter())
                    .map(|(w, &b)| dot(w, &ex.x) + b)
                    .collect();
                softmax(&mut scores);
                for (c, w) in weights.iter_mut().enumerate() {
                    let target = if c as u32 == ex.y { 1.0 } else { 0.0 };
                    let g = scores[c] - target; // dCE/dlogit
                    if g != 0.0 {
                        axpy(-cfg.lr * g, &ex.x, w);
                    }
                    if cfg.l2 > 0.0 {
                        for v in w.iter_mut() {
                            *v *= 1.0 - cfg.lr * cfg.l2;
                        }
                    }
                    bias[c] -= cfg.lr * g;
                }
            }
        }
        LogisticRegression {
            name: "logistic-regression".into(),
            weights,
            bias,
        }
    }

    /// Number of parameters (for reporting).
    pub fn num_params(&self) -> usize {
        self.weights.len() * self.weights.first().map_or(0, Vec::len) + self.bias.len()
    }
}

impl Model for LogisticRegression {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.weights.len()
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut s: Vec<f32> = self
            .weights
            .iter()
            .zip(self.bias.iter())
            .map(|(w, &b)| dot(w, x) + b)
            .collect();
        softmax(&mut s);
        s
    }
}

/// Hyperparameters for [`LinearSvm::train`].
#[derive(Clone, Debug)]
pub struct LinearSvmConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization strength (SVM margin term).
    pub l2: f32,
}

impl Default for LinearSvmConfig {
    fn default() -> Self {
        LinearSvmConfig {
            epochs: 5,
            lr: 0.03,
            l2: 1e-4,
        }
    }
}

/// One-vs-rest linear SVM trained with hinge-loss SGD (Pegasos-style).
///
/// Inference is identical in shape to logistic regression (k dot products)
/// but scores are raw margins, not probabilities.
pub struct LinearSvm {
    name: String,
    weights: Vec<Vec<f32>>,
    bias: Vec<f32>,
}

impl LinearSvm {
    /// Train one binary hinge-loss separator per class, warm-started from
    /// the Rocchio centroid discriminant ([`rocchio_init`]).
    pub fn train(dataset: &Dataset, cfg: &LinearSvmConfig, seed: u64) -> Self {
        let k = dataset.num_classes();
        let d = dataset.num_features();
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut weights, mut bias) = rocchio_init(dataset, k, d);

        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let ex = &dataset.train[i];
                for (c, w) in weights.iter_mut().enumerate() {
                    let y = if c as u32 == ex.y { 1.0f32 } else { -1.0 };
                    let margin = y * (dot(w, &ex.x) + bias[c]);
                    if cfg.l2 > 0.0 {
                        for v in w.iter_mut() {
                            *v *= 1.0 - cfg.lr * cfg.l2;
                        }
                    }
                    if margin < 1.0 {
                        axpy(cfg.lr * y, &ex.x, w);
                        bias[c] += cfg.lr * y;
                    }
                }
            }
        }
        LinearSvm {
            name: "linear-svm".into(),
            weights,
            bias,
        }
    }

    /// Rename (used to distinguish the "PySpark" flavor in experiments).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }
}

impl Model for LinearSvm {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.weights.len()
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        self.weights
            .iter()
            .zip(self.bias.iter())
            .map(|(w, &b)| dot(w, x) + b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::eval::accuracy;

    fn small_ds() -> Dataset {
        DatasetSpec::speech_like()
            .with_train_size(390)
            .with_test_size(195)
            .with_difficulty(0.35)
            .generate(21)
    }

    #[test]
    fn logistic_regression_learns() {
        let ds = small_ds();
        let m = LogisticRegression::train(&ds, &LogisticRegressionConfig::default(), 1);
        let acc = accuracy(&m, &ds.test);
        assert!(acc > 0.7, "accuracy {acc}");
        assert_eq!(m.num_classes(), 39);
    }

    #[test]
    fn logistic_scores_are_probabilities() {
        let ds = small_ds();
        let m = LogisticRegression::train(&ds, &LogisticRegressionConfig::default(), 1);
        let s = m.scores(&ds.test[0].x);
        assert_eq!(s.len(), 39);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn linear_svm_learns() {
        let ds = small_ds();
        let m = LinearSvm::train(&ds, &LinearSvmConfig::default(), 1);
        let acc = accuracy(&m, &ds.test);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = small_ds();
        let a = LinearSvm::train(&ds, &LinearSvmConfig::default(), 9);
        let b = LinearSvm::train(&ds, &LinearSvmConfig::default(), 9);
        assert_eq!(a.scores(&ds.test[0].x), b.scores(&ds.test[0].x));
    }

    /// Both warm-started linear models converge across the Table-1
    /// dataset shapes (MNIST-like 784×10, CIFAR-like 3072×10, speech-like
    /// 425×39), far above the 10% / 10% / 2.6% chance rates.
    #[test]
    fn warm_start_converges_on_table1_shapes() {
        let shapes = [
            ("mnist", DatasetSpec::mnist_like(), 40, 0.90),
            ("cifar", DatasetSpec::cifar_like(), 40, 0.60),
            ("speech", DatasetSpec::speech_like(), 12, 0.90),
        ];
        for (name, spec, per_class, threshold) in shapes {
            let classes = spec.num_classes;
            let ds = spec
                .with_train_size(classes * per_class)
                .with_test_size(classes * 10)
                .with_difficulty(0.25)
                .generate(7);
            let logreg = LogisticRegression::train(&ds, &LogisticRegressionConfig::default(), 1);
            let svm = LinearSvm::train(&ds, &LinearSvmConfig::default(), 1);
            let acc_lr = accuracy(&logreg, &ds.test);
            let acc_svm = accuracy(&svm, &ds.test);
            assert!(
                acc_lr > threshold,
                "{name}: warm-started logreg accuracy {acc_lr}"
            );
            assert!(
                acc_svm > threshold,
                "{name}: warm-started svm accuracy {acc_svm}"
            );
        }
    }

    #[test]
    fn svm_rename_works() {
        let ds = small_ds();
        let m =
            LinearSvm::train(&ds, &LinearSvmConfig::default(), 1).with_name("linear-svm-pyspark");
        assert_eq!(m.name(), "linear-svm-pyspark");
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        let ds = small_ds();
        let m = LogisticRegression::train(
            &ds,
            &LogisticRegressionConfig {
                epochs: 1,
                ..Default::default()
            },
            1,
        );
        assert_eq!(m.num_params(), 39 * 39 + 39);
    }
}
