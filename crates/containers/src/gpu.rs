//! Simulated GPU device and the paper's deep-model zoo.
//!
//! The paper's Figure-6/11 experiments run conv nets on a Tesla K20c. What
//! those experiments actually exercise is two properties of GPU serving:
//!
//! 1. **wave-parallel batching** — a batch of `b` inputs costs
//!    `ceil(b / wave_size) · wave_time`, so larger batches amortize
//!    beautifully up to the device's parallel width, then step;
//! 2. **serial device occupancy** — one batch owns the device at a time,
//!    so the serving layer must pipeline (queue the next batch during the
//!    current one) to saturate it.
//!
//! [`GpuDevice`] reproduces both: a mutex-guarded device whose holder
//! "computes" for the wave-model duration. Model answers still come from
//! real model code; only the clock is simulated.

use crate::latency::precise_sleep;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution-cost spec for one deep model on the simulated GPU.
#[derive(Clone, Debug)]
pub struct GpuModelSpec {
    /// Human-readable name ("inception-v3", ...).
    pub name: String,
    /// Layer description for Table-2 style reporting.
    pub layers: String,
    /// Inputs evaluated in parallel per wave (the hand-tuned batch size in
    /// the paper's Figure 11: MNIST 512, CIFAR 128, ImageNet 16).
    pub wave_size: usize,
    /// Time for one wave on the device.
    pub wave_time: Duration,
    /// Fixed per-batch dispatch cost (kernel launch, PCIe copy).
    pub dispatch: Duration,
}

impl GpuModelSpec {
    /// Expected device time for a batch of `n`.
    pub fn batch_time(&self, n: usize) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        let waves = n.div_ceil(self.wave_size) as u32;
        self.dispatch + self.wave_time * waves
    }

    /// Peak throughput (items/s) with full waves and perfect pipelining.
    pub fn peak_throughput(&self) -> f64 {
        self.wave_size as f64 / self.batch_time(self.wave_size).as_secs_f64()
    }
}

/// A serially-shared accelerator: batches execute one at a time.
///
/// Execution is blocking (call from a worker thread or `spawn_blocking`);
/// the device mutex is held for the full compute duration, which is the
/// point — it makes device contention visible as queueing delay, exactly
/// like a real GPU.
pub struct GpuDevice {
    spec: GpuModelSpec,
    device: Mutex<()>,
}

impl GpuDevice {
    /// Create a device executing `spec`.
    pub fn new(spec: GpuModelSpec) -> Arc<Self> {
        Arc::new(GpuDevice {
            spec,
            device: Mutex::new(()),
        })
    }

    /// The model spec this device runs.
    pub fn spec(&self) -> &GpuModelSpec {
        &self.spec
    }

    /// Execute a batch, blocking until the device is free and the compute
    /// completes. Returns `(queue_wait, compute_time)`.
    pub fn execute_blocking(&self, batch_size: usize) -> (Duration, Duration) {
        let enqueue = Instant::now();
        let guard = self.device.lock();
        let queue_wait = enqueue.elapsed();
        let compute = self.spec.batch_time(batch_size);
        if compute > Duration::ZERO {
            precise_sleep(compute);
        }
        drop(guard);
        (queue_wait, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(wave: usize, ms: u64) -> GpuModelSpec {
        GpuModelSpec {
            name: "test-net".into(),
            layers: "2 Conv".into(),
            wave_size: wave,
            wave_time: Duration::from_millis(ms),
            dispatch: Duration::ZERO,
        }
    }

    #[test]
    fn batch_time_steps_at_wave_boundaries() {
        let s = spec(16, 10);
        assert_eq!(s.batch_time(0), Duration::ZERO);
        assert_eq!(s.batch_time(1), Duration::from_millis(10));
        assert_eq!(s.batch_time(16), Duration::from_millis(10));
        assert_eq!(s.batch_time(17), Duration::from_millis(20));
        assert_eq!(s.batch_time(32), Duration::from_millis(20));
    }

    #[test]
    fn peak_throughput_matches_wave_math() {
        let s = spec(512, 22);
        // 512 items / 22ms ≈ 23,272 items/s — the Figure-11 MNIST regime.
        let t = s.peak_throughput();
        assert!((t - 512.0 / 0.022).abs() < 1.0, "throughput {t}");
    }

    #[test]
    fn device_serializes_batches() {
        let dev = GpuDevice::new(spec(8, 20));
        let d1 = dev.clone();
        let first = std::thread::spawn(move || d1.execute_blocking(8));
        // Let the first batch grab the device.
        std::thread::sleep(Duration::from_millis(5));
        let (queue_wait, compute) = dev.execute_blocking(8);
        first.join().unwrap();
        assert!(
            queue_wait >= Duration::from_millis(10),
            "second batch should wait for the device, waited {queue_wait:?}"
        );
        assert_eq!(compute, Duration::from_millis(20));
    }

    #[test]
    fn dispatch_cost_is_added() {
        let mut s = spec(4, 10);
        s.dispatch = Duration::from_millis(3);
        assert_eq!(s.batch_time(4), Duration::from_millis(13));
    }
}
