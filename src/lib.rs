//! # Clipper: a low-latency online prediction serving system
//!
//! A from-scratch Rust reproduction of *Clipper* (Crankshaw et al., NSDI
//! 2017). Clipper interposes between end-user applications and machine
//! learning models, providing a layered architecture:
//!
//! - the **model abstraction layer** ([`core::abstraction`]) gives every
//!   model a uniform batch-prediction interface behind a prediction cache
//!   and per-container adaptive batching queues;
//! - the **model selection layer** ([`core::selection`]) dispatches each
//!   query to one or more models using online bandit policies (Exp3, Exp4)
//!   and combines their outputs into a robust prediction with a confidence
//!   estimate, mitigating stragglers along the way.
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users only need a single dependency:
//!
//! ```
//! use clipper::prelude::*;
//!
//! # fn main() {
//! let dataset = clipper::ml::datasets::DatasetSpec::mnist_like()
//!     .with_train_size(200)
//!     .with_test_size(50)
//!     .generate(42);
//! assert_eq!(dataset.num_features(), 784);
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end serving deployment.

pub use clipper_baseline as baseline;
pub use clipper_containers as containers;
pub use clipper_core as core;
pub use clipper_metrics as metrics;
pub use clipper_ml as ml;
pub use clipper_rpc as rpc;
pub use clipper_statestore as statestore;
pub use clipper_workload as workload;

/// Commonly used items, ready for glob import.
pub mod prelude {
    pub use clipper_containers::{ContainerConfig, LatencyProfile};
    pub use clipper_core::{
        ApiError, AppConfig, AppUpdate, Clipper, ClipperBuilder, Feedback, HttpFrontend, Input,
        ModelId, Output, PolicyKind, Prediction,
    };
    pub use clipper_ml::datasets::{Dataset, DatasetSpec};
    pub use clipper_ml::models::Model;
}
