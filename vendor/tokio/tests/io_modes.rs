//! The timer-backoff readiness emulation must keep working as the
//! portability fallback, selectable at runtime per socket creation.
//!
//! A single serial test in its own binary: `set_io_mode` is process
//! global, so toggling it here must not race other socket tests.

use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{IoMode, TcpListener, TcpStream};

#[tokio::test]
async fn backoff_fallback_still_serves_and_mode_is_per_socket() {
    tokio::net::set_io_mode(IoMode::Backoff);
    assert_eq!(tokio::net::io_mode(), IoMode::Backoff);

    // Sockets created now use timer-backoff readiness: a blocked read
    // registers timer retries.
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).await.unwrap();
        conn.write_all(&buf).await.unwrap();
    });

    let timer_regs_before = tokio::time::timer_registration_count();
    let mut client = TcpStream::connect(addr).await.unwrap();
    client.write_all(b"ping").await.unwrap();
    let mut buf = [0u8; 4];
    client.read_exact(&mut buf).await.unwrap();
    assert_eq!(&buf, b"ping");
    server.await.unwrap();
    assert!(
        tokio::time::timer_registration_count() > timer_regs_before,
        "backoff mode must route readiness through the timer"
    );

    // Back to the default; on supported targets this is the reactor and
    // a fresh echo round-trip works without timer registrations on the
    // socket path.
    tokio::net::set_io_mode(IoMode::Reactor);
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).await.unwrap();
        // Write from a thread after a delay so the client read parks.
        std::thread::sleep(Duration::from_millis(20));
        conn.write_all(&buf).await.unwrap();
    });
    let mut client = TcpStream::connect(addr).await.unwrap();
    client.write_all(b"pong").await.unwrap();
    let mut buf = [0u8; 4];
    client.read_exact(&mut buf).await.unwrap();
    assert_eq!(&buf, b"pong");
    server.await.unwrap();

    #[cfg(vendored_reactor)]
    assert_eq!(tokio::net::io_mode(), IoMode::Reactor);
    #[cfg(not(vendored_reactor))]
    assert_eq!(
        tokio::net::io_mode(),
        IoMode::Backoff,
        "requesting the reactor on an unsupported target falls back"
    );
}
