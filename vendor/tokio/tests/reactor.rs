//! Functional tests for the epoll reactor's readiness path.
//!
//! These run on the supported reactor targets only; exact resource
//! accounting (registration counts, zero-timer-registration asserts)
//! lives in `reactor_idle.rs`, which runs as a single serial test in its
//! own process so parallel tests can't pollute the global counters.

#![cfg(vendored_reactor)]

use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

#[tokio::test]
async fn reactor_is_active_on_this_target() {
    // Touch the net path so the reactor is initialized.
    let _listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    assert!(
        tokio::reactor::active(),
        "reactor must drive readiness on linux x86_64/aarch64"
    );
    assert_eq!(tokio::net::io_mode(), tokio::net::IoMode::Reactor);
}

/// A read blocked on an empty socket must be woken by kernel readiness
/// when the peer writes — promptly, not after a timer quantum.
#[tokio::test]
async fn blocked_read_wakes_on_peer_write() {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();

    let server = tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        // Delay the write from a plain thread so no tokio timer is
        // involved in making the reader runnable.
        std::thread::sleep(Duration::from_millis(50));
        conn.write_all(b"ready").await.unwrap();
        conn.flush().await.unwrap();
        // Hold the connection open until the client is done reading.
        let mut byte = [0u8; 1];
        let _ = conn.read(&mut byte).await;
    });

    let mut client = TcpStream::connect(addr).await.unwrap();
    let mut buf = [0u8; 5];
    let t0 = Instant::now();
    client.read_exact(&mut buf).await.unwrap();
    let waited = t0.elapsed();
    assert_eq!(&buf, b"ready");
    // The write lands ~50 ms in; the wake must arrive well before the
    // 5 s test watchdogs that would indicate a lost wakeup.
    assert!(waited >= Duration::from_millis(40), "read returned early");
    assert!(
        waited < Duration::from_secs(2),
        "reader was not woken promptly: {waited:?}"
    );
    client.write_all(b"x").await.unwrap();
    server.await.unwrap();
}

/// Split halves share one epoll registration; concurrent blocked read
/// and completing writes on the same fd must not starve each other.
#[tokio::test]
async fn split_halves_read_and_write_concurrently() {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();

    let echo = tokio::spawn(async move {
        let (conn, _) = listener.accept().await.unwrap();
        let (mut rd, mut wr) = conn.into_split();
        let mut total = 0usize;
        let mut buf = [0u8; 4096];
        while total < 1 << 20 {
            let n = rd.read(&mut buf).await.unwrap();
            if n == 0 {
                break;
            }
            wr.write_all(&buf[..n]).await.unwrap();
            total += n;
        }
        total
    });

    let conn = TcpStream::connect(addr).await.unwrap();
    let (mut rd, mut wr) = conn.into_split();
    let writer = tokio::spawn(async move {
        let chunk = [7u8; 4096];
        for _ in 0..(1 << 20) / 4096 {
            wr.write_all(&chunk).await.unwrap();
        }
        wr.flush().await.unwrap();
        wr
    });

    let mut echoed = 0usize;
    let mut buf = [0u8; 4096];
    while echoed < 1 << 20 {
        let n = rd.read(&mut buf).await.unwrap();
        assert!(n > 0, "echo stream closed early at {echoed}");
        assert!(buf[..n].iter().all(|&b| b == 7));
        echoed += n;
    }
    let wr = writer.await.unwrap();
    drop(wr); // closes the write side; echo task sees EOF or completes
    assert_eq!(echo.await.unwrap(), 1 << 20);
}

/// Many concurrent connections multiplexed over one reactor: every
/// ping-pong completes.
#[tokio::test]
async fn many_connections_multiplex() {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();

    let server = tokio::spawn(async move {
        let mut served = Vec::new();
        for _ in 0..32 {
            let (mut conn, _) = listener.accept().await.unwrap();
            served.push(tokio::spawn(async move {
                let mut buf = [0u8; 8];
                conn.read_exact(&mut buf).await.unwrap();
                conn.write_all(&buf).await.unwrap();
            }));
        }
        for s in served {
            s.await.unwrap();
        }
    });

    let mut clients = Vec::new();
    for i in 0..32u64 {
        clients.push(tokio::spawn(async move {
            let mut conn = TcpStream::connect(addr).await.unwrap();
            conn.write_all(&i.to_le_bytes()).await.unwrap();
            let mut buf = [0u8; 8];
            conn.read_exact(&mut buf).await.unwrap();
            assert_eq!(u64::from_le_bytes(buf), i);
        }));
    }
    for c in clients {
        c.await.unwrap();
    }
    server.await.unwrap();
}
