//! Figure 10 — personalized (contextual) model selection on speech.
//!
//! Dialect-specific phoneme models plus a dialect-oblivious model serve
//! simulated TIMIT users. Three deployments are compared as feedback
//! accumulates per user:
//!
//! - **No Dialect**: the single global model;
//! - **Static Dialect**: the user's reported dialect model (offline
//!   personalization);
//! - **Clipper Selection Policy**: per-user Exp4 ensemble over all nine
//!   models, learning from that user's feedback (§5.3).

use clipper_core::selection::SelectionPolicy;
use clipper_core::{Exp4Policy, Feedback, ModelId, Output};
use clipper_ml::speech::{DialectModel, SpeechCorpus, NUM_DIALECTS, NUM_SPEAKERS};
use clipper_workload::Table;
use rand::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const FEEDBACK_ROUNDS: usize = 9; // x-axis 0..8 as in the figure
const USERS: usize = 40;
const FRAMES: usize = 30;

fn main() {
    println!("== Figure 10: Personalized Model Selection (speech) ==\n");
    let corpus = SpeechCorpus::default_corpus(77);

    // Train the model zoo.
    let dialect_models: Vec<Arc<DialectModel>> = (0..NUM_DIALECTS as u32)
        .map(|d| {
            Arc::new(DialectModel::train(
                &format!("dialect-{d}"),
                &corpus.training_utterances(Some(d), 70, 20, 500 + d as u64),
            ))
        })
        .collect();
    let global = Arc::new(DialectModel::train(
        "global",
        &corpus.training_utterances(None, 150, 20, 999),
    ));

    let ids: Vec<ModelId> = (0..NUM_DIALECTS)
        .map(|d| ModelId::new(&format!("dialect-{d}"), 1))
        .chain(std::iter::once(ModelId::new("global", 1)))
        .collect();
    let policy = Exp4Policy::new(0.8);

    // error[round][approach]
    let mut err_static = [0.0f64; FEEDBACK_ROUNDS];
    let mut err_global = [0.0f64; FEEDBACK_ROUNDS];
    let mut err_clipper = [0.0f64; FEEDBACK_ROUNDS];

    let mut rng = StdRng::seed_from_u64(4);
    for u in 0..USERS {
        let speaker = (u * (NUM_SPEAKERS / USERS)) as u32;
        let dialect = corpus.dialect_of(speaker) as usize;
        let mut state = policy.init(&ids, u as u64);

        for round in 0..FEEDBACK_ROUNDS {
            // Evaluate all three deployments on a fresh utterance.
            let eval_utt = corpus.utterance(speaker, FRAMES, &mut rng);
            err_static[round] += dialect_models[dialect].error_rate(&eval_utt) / USERS as f64;
            err_global[round] += global.error_rate(&eval_utt) / USERS as f64;

            let preds = transcribe_all(&dialect_models, &global, &ids, &eval_utt.frames);
            let input: clipper_core::Input = Arc::new(eval_utt.flatten());
            let (out, _) = policy.combine(&state, &input, &preds);
            let clipper_err = match out {
                Output::Labels(l) => clipper_ml::eval::sequence_error_rate(&eval_utt.phonemes, &l),
                _ => 1.0,
            };
            err_clipper[round] += clipper_err / USERS as f64;

            // One feedback observation per round (the figure's x-axis).
            let fb_utt = corpus.utterance(speaker, FRAMES, &mut rng);
            let fb_preds = transcribe_all(&dialect_models, &global, &ids, &fb_utt.frames);
            let fb_input: clipper_core::Input = Arc::new(fb_utt.flatten());
            policy.observe(
                &mut state,
                &fb_input,
                &Feedback::labels(fb_utt.phonemes.clone()),
                &fb_preds,
            );
        }
    }

    let mut table = Table::new(&["feedback", "static dialect", "no dialect", "clipper policy"]);
    for round in 0..FEEDBACK_ROUNDS {
        table.row(&[
            format!("{round}"),
            format!("{:.3}", err_static[round]),
            format!("{:.3}", err_global[round]),
            format!("{:.3}", err_clipper[round]),
        ]);
    }
    table.print();
    println!("\npaper reference: dialect-specific ≈ 0.29 < dialect-oblivious ≈ 0.36; the selection policy starts between them");
    println!("and converges to ≤ the static dialect model within a few feedback observations");
}

fn transcribe_all(
    dialect_models: &[Arc<DialectModel>],
    global: &Arc<DialectModel>,
    ids: &[ModelId],
    frames: &[Vec<f32>],
) -> HashMap<ModelId, Output> {
    let mut preds = HashMap::new();
    for (d, m) in dialect_models.iter().enumerate() {
        preds.insert(ids[d].clone(), Output::Labels(m.transcribe(frames)));
    }
    preds.insert(
        ids[NUM_DIALECTS].clone(),
        Output::Labels(global.transcribe(frames)),
    );
    preds
}
