//! Shared HTTP-frontend harness for the wire-speed benches.
//!
//! Used by `rpc_latency`'s `http_predict` phase and the `alloc_count`
//! allocations-per-request harness: a Clipper + [`HttpFrontend`] backed
//! by an in-process echo transport, and a buffer-reusing keep-alive
//! client whose steady-state loop performs no allocation of its own (so
//! per-request allocation counts measure the server, not the harness).

use clipper_core::{AppConfig, BatchConfig, Clipper, HttpFrontend, ModelId, PolicyKind};
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::FnTransport;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

/// App name served by [`start_echo_frontend`].
pub const APP: &str = "bench";

/// Clipper + HTTP frontend serving app [`APP`] from an in-process echo
/// transport: the first input feature comes back as the class label.
pub async fn start_echo_frontend() -> (HttpFrontend, Clipper) {
    let clipper = Clipper::builder().build();
    let m = ModelId::new("m", 1);
    clipper.add_model(m.clone(), BatchConfig::default());
    clipper
        .add_replica(
            &m,
            Arc::new(FnTransport::new(
                "echo",
                |inputs: &[clipper_rpc::Input]| {
                    Ok(PredictReply {
                        outputs: inputs
                            .iter()
                            .map(|x| WireOutput::Class(x.first().copied().unwrap_or(0.0) as u32))
                            .collect(),
                        queue_us: 0,
                        compute_us: 0,
                    })
                },
            )),
        )
        .unwrap();
    clipper.register_app(
        AppConfig::new(APP, vec![m])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(100)),
    );
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .unwrap();
    (frontend, clipper)
}

/// A keep-alive HTTP/1.1 client that reuses one response buffer across
/// calls. After warmup its per-call path allocates nothing.
pub struct HttpClient {
    conn: TcpStream,
    buf: Vec<u8>,
    filled: usize,
}

/// First index of `\r\n\r\n` in `buf`, or `None`.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the `content-length` value out of a response head (the frontend
/// always emits the header, lowercase).
fn content_length(head: &[u8]) -> usize {
    const NEEDLE: &[u8] = b"content-length:";
    let mut i = 0;
    while i + NEEDLE.len() <= head.len() {
        if head[i..i + NEEDLE.len()].eq_ignore_ascii_case(NEEDLE) {
            let mut n = 0usize;
            for &b in &head[i + NEEDLE.len()..] {
                match b {
                    b' ' if n == 0 => {}
                    b'0'..=b'9' => n = n * 10 + (b - b'0') as usize,
                    _ => break,
                }
            }
            return n;
        }
        i += 1;
    }
    0
}

impl HttpClient {
    /// Connect to `addr` with `TCP_NODELAY` set.
    pub async fn connect(addr: SocketAddr) -> HttpClient {
        let conn = TcpStream::connect(addr).await.unwrap();
        conn.set_nodelay(true).unwrap();
        HttpClient {
            conn,
            buf: vec![0u8; 16 * 1024],
            filled: 0,
        }
    }

    /// Send one pre-built request and read exactly one response, which
    /// stays in the internal buffer; returns the HTTP status code.
    pub async fn call(&mut self, request: &[u8]) -> u16 {
        self.conn.write_all(request).await.unwrap();
        self.filled = 0;
        let total = loop {
            if let Some(head_end) = find_head_end(&self.buf[..self.filled]) {
                break head_end + 4 + content_length(&self.buf[..head_end]);
            }
            self.fill().await;
        };
        while self.filled < total {
            self.fill().await;
        }
        // "HTTP/1.1 NNN ..."
        let s = &self.buf[9..12];
        (s[0] - b'0') as u16 * 100 + (s[1] - b'0') as u16 * 10 + (s[2] - b'0') as u16
    }

    /// The last response's bytes.
    pub fn last_response(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    async fn fill(&mut self) {
        if self.filled == self.buf.len() {
            self.buf.resize(self.buf.len() * 2, 0);
        }
        let n = self.conn.read(&mut self.buf[self.filled..]).await.unwrap();
        assert!(n > 0, "connection closed mid-response");
        self.filled += n;
    }
}

/// Build a predict POST for [`APP`] (keep-alive).
pub fn predict_request(feature: u32) -> Vec<u8> {
    let body = format!("{{\"input\": [{feature}.0]}}");
    format!(
        "POST /api/v1/apps/{APP}/predict HTTP/1.1\r\nhost: x\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Build a control-plane GET (keep-alive).
pub fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nhost: x\r\n\r\n").into_bytes()
}
