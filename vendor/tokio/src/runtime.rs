//! The executor: a global worker pool plus a `block_on` driver.
//!
//! One process-wide scheduler is lazily initialized on first use and
//! shared by every `Runtime` handle — `#[tokio::test]` functions running
//! in parallel threads all feed the same pool, mirroring how this
//! workspace actually uses tokio (one multi-threaded runtime per process).

use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Parked: waiting for a wake.
    Idle,
    /// In the run queue.
    Queued,
    /// Being polled by a worker right now.
    Running,
    /// Future completed or cancelled; nothing left to run.
    Done,
}

struct TaskState {
    status: Status,
    /// Woken while running: reschedule after the current poll.
    rerun: bool,
    /// When the task last went `Idle` (for idle-task sweeping).
    idle_since: Option<std::time::Instant>,
}

/// Type-erased hook the abort path uses to complete the join handle.
pub(crate) trait Completion: Send + Sync {
    /// Record cancellation (if no result landed yet) and wake the joiner.
    fn cancel(&self);
}

pub(crate) struct Task {
    id: u64,
    state: Mutex<TaskState>,
    future: Mutex<Option<BoxFuture>>,
    pub(crate) aborted: AtomicBool,
    /// The `JoinHandle` was dropped: nobody can observe this task's
    /// result anymore. Such tasks are eligible for idle sweeping.
    pub(crate) detached: AtomicBool,
    pub(crate) completion: Arc<dyn Completion>,
}

impl Task {
    fn run(self: &Arc<Task>) {
        if self.aborted.load(Ordering::SeqCst) {
            self.cancel_now();
            return;
        }
        let mut fut = match self.future.lock().unwrap().take() {
            Some(f) => f,
            None => return, // already completed elsewhere
        };
        self.state.lock().unwrap().status = Status::Running;
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        let poll = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match poll {
            Ok(Poll::Ready(())) | Err(_) => {
                // The wrapper future stored the result (or the panic) in
                // the join slot before returning Ready; a panic that
                // escaped the wrapper means the wrapper itself stored it.
                self.state.lock().unwrap().status = Status::Done;
                scheduler().release(self.id);
            }
            Ok(Poll::Pending) => {
                *self.future.lock().unwrap() = Some(fut);
                let mut st = self.state.lock().unwrap();
                if self.aborted.load(Ordering::SeqCst) {
                    drop(st);
                    self.cancel_now();
                } else if st.rerun {
                    st.rerun = false;
                    st.status = Status::Queued;
                    drop(st);
                    scheduler().push(Arc::clone(self));
                } else {
                    st.status = Status::Idle;
                    st.idle_since = Some(std::time::Instant::now());
                }
            }
        }
    }

    fn cancel_now(self: &Arc<Task>) {
        let already_done = {
            let mut st = self.state.lock().unwrap();
            let was = st.status;
            st.status = Status::Done;
            was == Status::Done
        };
        self.future.lock().unwrap().take();
        if !already_done {
            self.completion.cancel();
        }
        scheduler().release(self.id);
    }

    pub(crate) fn schedule_for_abort(self: &Arc<Task>) {
        let mut st = self.state.lock().unwrap();
        if st.status == Status::Idle {
            st.status = Status::Queued;
            drop(st);
            scheduler().push(Arc::clone(self));
        } else if st.status == Status::Running {
            st.rerun = true;
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        let mut st = self.state.lock().unwrap();
        match st.status {
            Status::Idle => {
                st.status = Status::Queued;
                drop(st);
                scheduler().push(self);
            }
            Status::Running => st.rerun = true,
            Status::Queued | Status::Done => {}
        }
    }
}

struct Scheduler {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    /// Every live spawned task, keyed by id. Like tokio's owned-task
    /// list: a task parked with no outstanding waker (e.g. holding a
    /// socket in `pending().await`) must stay alive even after its
    /// `JoinHandle` is dropped.
    owned: Mutex<std::collections::HashMap<u64, Arc<Task>>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl Scheduler {
    fn push(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.available.notify_one();
    }

    fn release(&self, id: u64) {
        self.owned.lock().unwrap().remove(&id);
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            task.run();
        }
    }
}

fn scheduler() -> &'static Scheduler {
    static SCHED: OnceLock<&'static Scheduler> = OnceLock::new();
    SCHED.get_or_init(|| {
        let sched: &'static Scheduler = Box::leak(Box::new(Scheduler {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            owned: Mutex::new(std::collections::HashMap::new()),
            next_id: std::sync::atomic::AtomicU64::new(0),
        }));
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 16);
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("tokio-worker-{i}"))
                .spawn(move || sched.worker_loop())
                .expect("spawn worker thread");
        }
        sched
    })
}

pub(crate) fn submit(future: BoxFuture, completion: Arc<dyn Completion>) -> Arc<Task> {
    let sched = scheduler();
    let id = sched.next_id.fetch_add(1, Ordering::Relaxed);
    let task = Arc::new(Task {
        id,
        state: Mutex::new(TaskState {
            status: Status::Queued,
            rerun: false,
            idle_since: None,
        }),
        future: Mutex::new(Some(future)),
        aborted: AtomicBool::new(false),
        detached: AtomicBool::new(false),
        completion,
    });
    sched.owned.lock().unwrap().insert(id, Arc::clone(&task));
    sched.push(Arc::clone(&task));
    task
}

/// Live tasks in the shared pool's owned-task list (queued, running, or
/// parked). Observability for soak harnesses and the sweeping tests.
pub fn live_tasks() -> usize {
    scheduler().owned.lock().unwrap().len()
}

/// Reclaim long-parked tasks whose `JoinHandle` is gone.
///
/// The shared pool's owned-task list otherwise accretes the parked tasks
/// of finished tests and runtimes forever — a task holding a socket in
/// `pending().await` stays alive with no one left to observe it. This
/// sweep cancels every task that is **detached** (its `JoinHandle` was
/// dropped) and has been **idle for at least `min_idle`**, returning how
/// many were reclaimed.
///
/// This is a harness-level API for test drivers and soak runs between
/// phases, not something to call while the swept tasks might still be
/// doing useful background work: pick `min_idle` longer than the longest
/// legitimate quiet period of any live fire-and-forget task (e.g. an
/// idle replica queue waiting for traffic).
pub fn sweep_idle_tasks(min_idle: std::time::Duration) -> usize {
    let now = std::time::Instant::now();
    let candidates: Vec<Arc<Task>> = scheduler()
        .owned
        .lock()
        .unwrap()
        .values()
        .filter(|t| {
            if !t.detached.load(Ordering::SeqCst) {
                return false;
            }
            let st = t.state.lock().unwrap();
            st.status == Status::Idle
                && st
                    .idle_since
                    .is_some_and(|since| now.duration_since(since) >= min_idle)
        })
        .cloned()
        .collect();
    for task in &candidates {
        // Cancel through the abort protocol (exactly what
        // `JoinHandle::abort` does): safe against a concurrent wake or a
        // worker already polling the task.
        task.aborted.store(true, Ordering::SeqCst);
        task.schedule_for_abort();
    }
    candidates.len()
}

struct ThreadWaker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// Drive `future` to completion on the current thread, parking between
/// polls. Spawned tasks continue to run on the worker pool.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let tw = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&tw));
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
            return out;
        }
        while !tw.notified.swap(false, Ordering::SeqCst) {
            std::thread::park();
        }
    }
}

/// Handle to the (global) executor, mirroring `tokio::runtime::Runtime`.
#[derive(Debug, Clone, Default)]
pub struct Runtime(());

impl Runtime {
    /// Obtain a handle; the shared pool starts lazily on first use.
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime(()))
    }

    /// Drive `future` to completion on this thread.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        block_on(future)
    }

    /// Spawn onto the worker pool.
    pub fn spawn<F>(&self, future: F) -> crate::task::JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        crate::task::spawn(future)
    }
}

/// Builder mirroring `tokio::runtime::Builder`; every knob is accepted and
/// ignored because the pool is global and always multi-threaded.
#[derive(Debug, Default)]
pub struct Builder(());

impl Builder {
    /// Multi-thread builder (the only flavor provided).
    pub fn new_multi_thread() -> Builder {
        Builder(())
    }

    /// Accepted for compatibility; the global pool sizes itself.
    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    /// Accepted for compatibility; all drivers are always enabled.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Produce the runtime handle.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Runtime::new()
    }
}
