//! A named metric registry.
//!
//! Components register their counters/histograms/meters under
//! slash-separated names (`cache/hits`, `queue/mnist:0/batch_size`), and the
//! frontend or an experiment harness snapshots the whole registry at once.

use crate::{Counter, Gauge, Histogram, Meter, MetricValue, RegistrySnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Meter(Meter),
    Histogram(Histogram),
    /// A counter whose value is read on demand at snapshot time. Lets
    /// components that keep their own relaxed atomics (e.g. the sharded
    /// prediction cache) report without double-counting on the hot path.
    PollCounter(Arc<dyn Fn() -> u64 + Send + Sync>),
    /// A gauge read on demand at snapshot time — for instantaneous state
    /// (queue depth, in-flight queries) that components already track.
    PollGauge(Arc<dyn Fn() -> i64 + Send + Sync>),
}

/// A concurrent, clonable collection of named metrics.
///
/// `get_or_*` methods are idempotent: repeated registration under the same
/// name returns the same underlying metric, so independent components can
/// share a metric by name alone.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<RwLock<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.write();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.write();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the meter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn meter(&self, name: &str) -> Meter {
        let mut m = self.metrics.write();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Meter(Meter::new()))
        {
            Metric::Meter(mm) => mm.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.write();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or replace) a counter that is *polled* at snapshot time
    /// instead of incremented: `read` is called once per
    /// [`Registry::snapshot`] and its value reported as a counter.
    ///
    /// Unlike the `get_or_*` methods this overwrites an existing polled
    /// counter under the same name (the newest source wins).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a non-polled metric.
    pub fn poll_counter(&self, name: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut m = self.metrics.write();
        match m.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Metric::PollCounter(Arc::new(read)));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get() {
                Metric::PollCounter(_) => {
                    e.insert(Metric::PollCounter(Arc::new(read)));
                }
                _ => panic!("metric {name:?} already registered with a different kind"),
            },
        }
    }

    /// Register (or replace) a gauge that is *polled* at snapshot time:
    /// `read` is called once per [`Registry::snapshot`] and its value
    /// reported as a gauge. Like [`Registry::poll_counter`], repeated
    /// registration under the same name replaces the source.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a non-polled-gauge metric.
    pub fn poll_gauge(&self, name: &str, read: impl Fn() -> i64 + Send + Sync + 'static) {
        let mut m = self.metrics.write();
        match m.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Metric::PollGauge(Arc::new(read)));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get() {
                Metric::PollGauge(_) => {
                    e.insert(Metric::PollGauge(Arc::new(read)));
                }
                _ => panic!("metric {name:?} already registered with a different kind"),
            },
        }
    }

    /// Remove every metric whose name starts with `prefix`. Used when a
    /// component with per-instance metrics (e.g. a replica queue) is
    /// decommissioned, so the registry does not grow without bound under
    /// instance churn. Handles already held by the component keep
    /// working; they just stop being reported.
    pub fn unregister_prefix(&self, prefix: &str) -> usize {
        let mut m = self.metrics.write();
        let doomed: Vec<String> = m
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        for k in &doomed {
            m.remove(k);
        }
        doomed.len()
    }

    /// Names currently registered, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.read().keys().cloned().collect()
    }

    /// Snapshot every metric for reporting.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics.read();
        let mut values = BTreeMap::new();
        for (name, metric) in m.iter() {
            let v = match metric {
                Metric::Counter(c) => MetricValue::Counter { value: c.get() },
                Metric::PollCounter(read) => MetricValue::Counter { value: read() },
                Metric::PollGauge(read) => MetricValue::Gauge { value: read() },
                Metric::Gauge(g) => MetricValue::Gauge { value: g.get() },
                Metric::Meter(meter) => MetricValue::Meter {
                    count: meter.count(),
                    rate: meter.rate(),
                    mean_rate: meter.mean_rate(),
                },
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    MetricValue::Histogram {
                        count: s.count(),
                        mean: s.mean(),
                        p50: s.p50(),
                        p95: s.p95(),
                        p99: s.p99(),
                        max: s.max(),
                        min: s.min(),
                    }
                }
            };
            values.insert(name.clone(), v);
        }
        RegistrySnapshot { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let c1 = r.counter("cache/hits");
        let c2 = r.counter("cache/hits");
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        assert_eq!(r.names(), vec!["cache/hits".to_string()]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x");
        r.histogram("x");
    }

    #[test]
    fn snapshot_includes_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(-2);
        r.meter("m").mark_n(7);
        r.histogram("h").record(100);
        let snap = r.snapshot();
        assert_eq!(snap.values.len(), 4);
        assert!(matches!(
            snap.values["c"],
            MetricValue::Counter { value: 5 }
        ));
        assert!(matches!(snap.values["g"], MetricValue::Gauge { value: -2 }));
        assert!(matches!(
            snap.values["m"],
            MetricValue::Meter { count: 7, .. }
        ));
        assert!(matches!(
            snap.values["h"],
            MetricValue::Histogram { count: 1, .. }
        ));
    }

    #[test]
    fn poll_counter_reads_at_snapshot_time() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let r = Registry::new();
        let source = Arc::new(AtomicU64::new(3));
        let s = source.clone();
        r.poll_counter("cache/hits", move || s.load(Ordering::Relaxed));
        assert!(matches!(
            r.snapshot().values["cache/hits"],
            MetricValue::Counter { value: 3 }
        ));
        source.store(11, Ordering::Relaxed);
        assert!(matches!(
            r.snapshot().values["cache/hits"],
            MetricValue::Counter { value: 11 }
        ));
        // Re-registration replaces the source.
        r.poll_counter("cache/hits", || 42);
        assert!(matches!(
            r.snapshot().values["cache/hits"],
            MetricValue::Counter { value: 42 }
        ));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn poll_counter_conflicts_with_other_kinds() {
        let r = Registry::new();
        r.histogram("x");
        r.poll_counter("x", || 0);
    }

    #[test]
    fn poll_gauge_reads_at_snapshot_time() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let r = Registry::new();
        let depth = Arc::new(AtomicI64::new(5));
        let d = depth.clone();
        r.poll_gauge("model/m/depth", move || d.load(Ordering::Relaxed));
        assert!(matches!(
            r.snapshot().values["model/m/depth"],
            MetricValue::Gauge { value: 5 }
        ));
        depth.store(-1, Ordering::Relaxed);
        assert!(matches!(
            r.snapshot().values["model/m/depth"],
            MetricValue::Gauge { value: -1 }
        ));
        // Re-registration replaces the source.
        r.poll_gauge("model/m/depth", || 9);
        assert!(matches!(
            r.snapshot().values["model/m/depth"],
            MetricValue::Gauge { value: 9 }
        ));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn poll_gauge_conflicts_with_other_kinds() {
        let r = Registry::new();
        r.counter("y");
        r.poll_gauge("y", || 0);
    }

    #[test]
    fn unregister_prefix_removes_only_matching_metrics() {
        let r = Registry::new();
        r.counter("queue/m:v1:0/shed");
        r.histogram("queue/m:v1:0/batch_size");
        r.poll_gauge("queue/m:v1:0/depth", || 1);
        r.counter("queue/m:v1:10/shed"); // shares a string prefix, distinct id
        assert_eq!(r.unregister_prefix("queue/m:v1:0/"), 3);
        assert_eq!(r.names(), vec!["queue/m:v1:10/shed".to_string()]);
    }

    #[test]
    fn names_are_sorted() {
        let r = Registry::new();
        r.counter("zeta");
        r.counter("alpha");
        assert_eq!(r.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
