//! Emits the `vendored_reactor` cfg on targets where the raw-syscall
//! epoll reactor is implemented (see `src/sys.rs`), so the supported-
//! target predicate lives in exactly one place instead of being
//! copy-pasted across every gated item.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(vendored_reactor)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    if os == "linux" && (arch == "x86_64" || arch == "aarch64") {
        println!("cargo::rustc-cfg=vendored_reactor");
    }
}
