//! Multi-frontend fan-in soak harness.
//!
//! The ROADMAP's top open item, and the first harness that composes every
//! subsystem under one sustained adversarial run: N in-process frontends
//! (each a full [`Clipper`] behind an [`HttpFrontend`]) share one
//! statestore and one replica fleet while an open-loop mixed workload
//! (predict + feedback) flows and a scripted **event timeline** injects
//! control-plane churn (rollout/rollback over `/api/v1`), a mid-soak
//! frontend crash + [`Clipper::rehydrate`] restart, and replica faults
//! through [`FaultyTransport`] — asserting that nothing is *lost*: every
//! accepted query completes or fail-fills, explicit admission sheds and
//! down-frontend refusals are answered promptly, and every frontend's
//! cache drains to `pending_len() == 0`.
//!
//! # Topology
//!
//! One model name with two versions; each version's replicas are a shared
//! fleet of [`FaultyTransport`]-wrapped transports (the chaos handles).
//! Every frontend builds its *own* queues over the *same* transports —
//! that is the fan-in: one replica fleet, N schedulers pulling into it.
//! Frontend 0 registers the deployment (persisting it); frontends `1..N`
//! — and every restart — rebuild from the store via `rehydrate()`.
//!
//! # Cross-frontend cache story (measured, not hand-waved)
//!
//! Each frontend keeps its own sharded prediction cache, and rollouts
//! need **no cross-frontend invalidation**: cache keys embed the full
//! `ModelId` (name *and* version), so a rollout makes the old version's
//! entries unreachable and CLOCK reclaims them; the new version warms on
//! first miss. The per-frontend [`CacheStats`] in the report carry the
//! measured cost (the post-rollout miss spike) of that design.
//!
//! # Outcome taxonomy
//!
//! - **Ok** — completed (possibly degraded: stragglers substituted;
//!   possibly rescued: an upstream batch failure redispatched onto a
//!   sibling replica inside the deadline budget);
//! - **Shed** — refused by admission control (an answered 429);
//! - **Refused** — the target frontend was down (crash window);
//! - **Lost** — timed out past the client-side detector, hung, or
//!   hard-failed. A lossless soak has exactly zero of these.

use crate::arrivals::ArrivalProcess;
use crate::churn::{http_request, ActionOutcome};
use crate::report::{PhaseOutcome, PhaseRecorder, PhaseStats};
use clipper_core::{
    AppConfig, BatchConfig, CacheStats, Clipper, Feedback, HttpFrontend, ModelId, Output,
    PolicyKind, PredictError,
};
use clipper_metrics::Counter;
use clipper_rpc::faulty::{FaultConfig, FaultyTransport};
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::{BatchTransport, FnTransport, Input};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The soak's model name ("m") and application name ("app").
pub const MODEL: &str = "m";
/// The application every query targets.
pub const APP: &str = "app";
/// Container name used by the fleet register/expire timeline actions.
pub const FLEET_REPLICA: &str = "soak-fleet-replica";
/// Launcher capability the fleet actions attach through.
pub const FLEET_CAPABILITY: &str = "soak:inproc";

/// One scheduled timeline event.
#[derive(Clone, Debug)]
pub struct SoakEvent {
    /// Offset into the run at which the event fires. Events are applied
    /// sequentially in offset order; a slow action (a rollout quiescing
    /// under load) delays later events rather than overlapping them, so
    /// runs are reproducible.
    pub at: Duration,
    /// What happens.
    pub action: SoakAction,
}

/// The chaos/churn vocabulary of the timeline.
#[derive(Clone, Debug)]
pub enum SoakAction {
    /// Advance the phase recorder: later samples land in this window.
    Phase(String),
    /// Drop frontend `i` whole — HTTP listener and Clipper instance.
    /// In-flight queries hold their own handle and complete; new queries
    /// targeting the slot are `Refused` until restart.
    CrashFrontend(usize),
    /// Rebuild frontend `i` from the statestore (`rehydrate()`), re-attach
    /// the shared fleet, and bind a fresh HTTP listener.
    RestartFrontend(usize),
    /// `POST /api/v1/models/{MODEL}/rollout` over frontend `via`'s HTTP
    /// surface.
    Rollout {
        /// Target version.
        version: u32,
        /// Frontend whose HTTP API performs it.
        via: usize,
    },
    /// `POST /api/v1/models/{MODEL}/rollback` over frontend `via`.
    Rollback {
        /// Frontend whose HTTP API performs it.
        via: usize,
    },
    /// Frontend `i` reconciles against the statestore
    /// ([`Clipper::sync_config`]) — how the *other* frontends converge on
    /// a rollout one of them performed.
    SyncConfig(usize),
    /// Flip one fleet replica into a black hole (every request fails).
    FaultOn {
        /// Model version whose fleet the replica belongs to.
        version: u32,
        /// Replica index within that version's fleet.
        replica: usize,
    },
    /// Restore the replica to a clean pass-through.
    FaultOff {
        /// Model version whose fleet the replica belongs to.
        version: u32,
        /// Replica index within that version's fleet.
        replica: usize,
    },
    /// Make one fleet replica *flaky*: each request independently fails
    /// with probability `drop_prob` — a transient-fault window (the
    /// retry path should absorb it invisibly) rather than a black hole
    /// (which the suspect/drain machinery handles). `drop_prob: 0.0`
    /// restores a clean pass-through.
    FlakyReplica {
        /// Model version whose fleet the replica belongs to.
        version: u32,
        /// Replica index within that version's fleet.
        replica: usize,
        /// Per-request failure probability while the window is open.
        drop_prob: f64,
    },
    /// Every frontend hot-removes and drains the replicas its scheduler
    /// marked suspect ([`Clipper::drain_suspect_replicas`]).
    DrainSuspects,
    /// A container self-registers over frontend `via`'s
    /// `POST /api/v1/replicas` surface (an in-process launcher attaches
    /// it immediately) and starts serving traffic as [`FLEET_REPLICA`].
    RegisterReplica {
        /// Model version the container announces.
        version: u32,
        /// Frontend whose HTTP API performs the registration.
        via: usize,
    },
    /// Frontend `via`'s fleet expires [`FLEET_REPLICA`] — the
    /// deterministic equivalent of its heartbeats stopping: the member
    /// is tombstoned and its queue gracefully drained (zero-drop).
    ExpireReplica {
        /// Frontend whose fleet performs the expiry.
        via: usize,
    },
}

impl SoakAction {
    fn label(&self) -> String {
        match self {
            SoakAction::Phase(name) => format!("phase:{name}"),
            SoakAction::CrashFrontend(i) => format!("crash f{i}"),
            SoakAction::RestartFrontend(i) => format!("restart f{i}"),
            SoakAction::Rollout { version, via } => {
                format!("rollout {MODEL}→v{version} via f{via}")
            }
            SoakAction::Rollback { via } => format!("rollback {MODEL} via f{via}"),
            SoakAction::SyncConfig(i) => format!("sync f{i}"),
            SoakAction::FaultOn { version, replica } => format!("fault on v{version}r{replica}"),
            SoakAction::FaultOff { version, replica } => format!("fault off v{version}r{replica}"),
            SoakAction::FlakyReplica {
                version,
                replica,
                drop_prob,
            } => format!("flaky v{version}r{replica} p={drop_prob}"),
            SoakAction::DrainSuspects => "drain suspects".into(),
            SoakAction::RegisterReplica { version, via } => {
                format!("register {FLEET_REPLICA} v{version} via f{via}")
            }
            SoakAction::ExpireReplica { via } => format!("expire {FLEET_REPLICA} via f{via}"),
        }
    }
}

/// Everything that parameterizes a soak run.
#[derive(Clone, Debug)]
pub struct SoakSpec {
    /// Number of in-process frontends (≥ 2 for the fan-in claims).
    pub frontends: usize,
    /// Fleet replicas per model version.
    pub replicas_per_version: usize,
    /// Total open-loop arrival rate (qps), round-robined across
    /// frontends.
    pub rate: f64,
    /// Soak duration (events are scheduled inside it).
    pub duration: Duration,
    /// Arrival/selection seed — runs are repeatable.
    pub seed: u64,
    /// Per-app latency objective.
    pub slo: Duration,
    /// Client-side lost detector: a query not answered within this is
    /// counted `Lost` (the server must answer *everything* it accepts).
    pub timeout: Duration,
    /// Every k-th request is a feedback call instead of a predict.
    pub feedback_every: u64,
    /// Distinct inputs per frontend (smaller → hotter cache).
    pub input_space: u64,
    /// Distinct user contexts cycling through requests.
    pub contexts: usize,
    /// Per-frontend prediction-cache capacity.
    pub cache_capacity: usize,
    /// The scripted timeline.
    pub events: Vec<SoakEvent>,
}

impl SoakSpec {
    /// A spec with no events — steady-state fan-in only.
    pub fn new(frontends: usize, rate: f64, duration: Duration) -> Self {
        SoakSpec {
            frontends,
            replicas_per_version: 2,
            rate,
            duration,
            seed: 42,
            slo: Duration::from_millis(50),
            timeout: Duration::from_secs(2),
            feedback_every: 10,
            // Larger than the cache: a steady miss stream keeps real
            // batches flowing to the replica fleet (an all-hit soak
            // would never exercise the schedulers or the fault paths).
            input_space: 16_384,
            contexts: 8,
            cache_capacity: 8_192,
            events: Vec::new(),
        }
    }

    /// Attach the standard adversarial timeline, scaled to `duration`:
    ///
    /// | offset | events |
    /// |--------|--------|
    /// | 15%    | phase `rollout`: roll `m`→v2 via f0's HTTP API, sync f1..N |
    /// | 18–26% | phase `flaky`: one v2 replica drops 60% of requests — the retry path must absorb it |
    /// | 30%    | phase `crash`: drop frontend 1 |
    /// | 45%    | phase `recovery`: rebuild frontend 1 via `rehydrate()` |
    /// | 60%    | phase `chaos`: black-hole one v2 fleet replica |
    /// | 72%    | every frontend drains its suspect replicas; fault lifted |
    /// | 80%    | phase `recovered`: roll back to v1 via f0, sync f1..N |
    pub fn with_standard_timeline(mut self) -> Self {
        let d = self.duration;
        let frac = |f: f64| d.mul_f64(f);
        let mut events = vec![
            SoakEvent {
                at: frac(0.15),
                action: SoakAction::Phase("rollout".into()),
            },
            SoakEvent {
                at: frac(0.15),
                action: SoakAction::Rollout { version: 2, via: 0 },
            },
        ];
        for i in 1..self.frontends {
            events.push(SoakEvent {
                at: frac(0.15),
                action: SoakAction::SyncConfig(i),
            });
        }
        events.extend([
            SoakEvent {
                at: frac(0.18),
                action: SoakAction::Phase("flaky".into()),
            },
            SoakEvent {
                at: frac(0.18),
                action: SoakAction::FlakyReplica {
                    version: 2,
                    replica: 1,
                    drop_prob: 0.6,
                },
            },
            SoakEvent {
                at: frac(0.26),
                action: SoakAction::FlakyReplica {
                    version: 2,
                    replica: 1,
                    drop_prob: 0.0,
                },
            },
            SoakEvent {
                at: frac(0.30),
                action: SoakAction::Phase("crash".into()),
            },
            SoakEvent {
                at: frac(0.30),
                action: SoakAction::CrashFrontend(1),
            },
            SoakEvent {
                at: frac(0.45),
                action: SoakAction::Phase("recovery".into()),
            },
            SoakEvent {
                at: frac(0.45),
                action: SoakAction::RestartFrontend(1),
            },
            SoakEvent {
                at: frac(0.60),
                action: SoakAction::Phase("chaos".into()),
            },
            SoakEvent {
                at: frac(0.60),
                action: SoakAction::FaultOn {
                    version: 2,
                    replica: 0,
                },
            },
            SoakEvent {
                at: frac(0.72),
                action: SoakAction::DrainSuspects,
            },
            SoakEvent {
                at: frac(0.72),
                action: SoakAction::FaultOff {
                    version: 2,
                    replica: 0,
                },
            },
            SoakEvent {
                at: frac(0.80),
                action: SoakAction::Phase("recovered".into()),
            },
            SoakEvent {
                at: frac(0.80),
                action: SoakAction::Rollback { via: 0 },
            },
        ]);
        for i in 1..self.frontends {
            events.push(SoakEvent {
                at: frac(0.80),
                action: SoakAction::SyncConfig(i),
            });
        }
        self.events = events;
        self
    }
}

/// Per-frontend outcome counters plus end-of-run registry state.
#[derive(Clone, Debug)]
pub struct FrontendStats {
    /// Completed requests served by this frontend.
    pub ok: u64,
    /// Completed requests that substituted at least one straggler
    /// (fail-fill visible to the client as reduced confidence, not an
    /// error).
    pub degraded: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests refused because the frontend was down.
    pub refused: u64,
    /// Requests lost (timed out / hard-failed).
    pub lost: u64,
    /// Queries rescued by deadline-budgeted retry: an upstream batch
    /// failure redispatched onto a sibling replica instead of
    /// fail-filling. Summed over the frontend's live queues at the end
    /// of the run (drained queues unregister their counters).
    pub retried: u64,
    /// Batches re-dispatched by the hedging knob (0 unless hedging is
    /// enabled on the model's queue config).
    pub hedged: u64,
    /// End-of-run cache counters — the measured cross-frontend cache
    /// story (per-frontend caches, version-keyed, no invalidation).
    pub cache: CacheStats,
    /// Cache entries still pending after drain — must be 0.
    pub pending_len: usize,
    /// The version the frontend's directory resolved `m` to at the end.
    pub current_version: Option<u32>,
    /// Whether the frontend was up at the end of the run.
    pub alive: bool,
}

/// Everything a soak run measured.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Arrivals issued by the open-loop schedule.
    pub issued: u64,
    /// Per-phase windows, in timeline order.
    pub phases: Vec<PhaseStats>,
    /// Whole-run rollup.
    pub totals: PhaseStats,
    /// Per-frontend breakdown.
    pub frontends: Vec<FrontendStats>,
    /// Every timeline event's outcome, in firing order.
    pub actions: Vec<ActionOutcome>,
    /// Whether every live frontend ended on the same current version and
    /// app candidate set as the statestore record.
    pub converged: bool,
}

impl SoakReport {
    /// Queries lost across the whole run.
    pub fn lost(&self) -> u64 {
        self.totals.lost
    }

    /// Queries rescued by retry across every live frontend's queues.
    pub fn retried(&self) -> u64 {
        self.frontends.iter().map(|f| f.retried).sum()
    }

    /// Hedged batch dispatches across every live frontend's queues.
    pub fn hedged(&self) -> u64 {
        self.frontends.iter().map(|f| f.hedged).sum()
    }

    /// Whether every timeline action succeeded.
    pub fn all_actions_ok(&self) -> bool {
        self.actions.iter().all(|a| a.result.is_ok())
    }

    /// Every issued arrival is accounted for by exactly one outcome.
    pub fn accounted(&self) -> bool {
        self.totals.completed + self.totals.shed + self.totals.refused + self.totals.lost
            == self.issued
    }

    /// The lossless verdict the soak exists to check: zero lost queries,
    /// every action landed, every arrival accounted for, every frontend's
    /// cache fully drained. Sheds and refusals are tolerated — they are
    /// answered decisions, not losses.
    pub fn is_lossless(&self) -> bool {
        self.lost() == 0
            && self.all_actions_ok()
            && self.accounted()
            && self.frontends.iter().all(|f| f.pending_len == 0)
    }
}

/// One live frontend: a Clipper and its HTTP listener.
struct Slot {
    clipper: Clipper,
    frontend: HttpFrontend,
}

struct FrontendCounters {
    ok: Counter,
    degraded: Counter,
    shed: Counter,
    refused: Counter,
    lost: Counter,
    /// Peak observed `queue/*/retried` / `queue/*/hedged` sums for this
    /// frontend. The per-queue counters unregister when a replica is
    /// removed (rollback, drained suspects), so the harness re-samples at
    /// every timeline action and keeps the high-water mark — otherwise a
    /// run that ends in a rollback would report the recovery work as 0.
    peak_retried: std::sync::atomic::AtomicU64,
    peak_hedged: std::sync::atomic::AtomicU64,
}

impl FrontendCounters {
    fn new() -> Self {
        FrontendCounters {
            ok: Counter::new(),
            degraded: Counter::new(),
            shed: Counter::new(),
            refused: Counter::new(),
            lost: Counter::new(),
            peak_retried: std::sync::atomic::AtomicU64::new(0),
            peak_hedged: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// The shared fleet: per version, the chaos-wrapped transports every
/// frontend attaches its own queues to.
struct Fleet {
    versions: Vec<(u32, Vec<Arc<FaultyTransport>>)>,
}

impl Fleet {
    fn build(replicas_per_version: usize, seed: u64) -> Self {
        let versions = [1u32, 2u32]
            .iter()
            .map(|&v| {
                let transports = (0..replicas_per_version)
                    .map(|r| {
                        let inner: Arc<dyn BatchTransport> = Arc::new(FnTransport::new(
                            &format!("{MODEL}-v{v}-r{r}"),
                            move |inputs: &[Input]| {
                                Ok(PredictReply {
                                    outputs: vec![WireOutput::Class(v); inputs.len()],
                                    queue_us: 0,
                                    compute_us: 50,
                                })
                            },
                        ));
                        Arc::new(FaultyTransport::new(
                            inner,
                            FaultConfig::default(),
                            seed ^ (u64::from(v) << 8) ^ r as u64,
                        ))
                    })
                    .collect();
                (v, transports)
            })
            .collect();
        Fleet { versions }
    }

    fn transport(&self, version: u32, replica: usize) -> Option<&Arc<FaultyTransport>> {
        self.versions
            .iter()
            .find(|(v, _)| *v == version)
            .and_then(|(_, ts)| ts.get(replica))
    }

    /// Attach this fleet to every model version `clipper` has registered.
    fn attach(&self, clipper: &Clipper) {
        for (v, transports) in &self.versions {
            let id = ModelId::new(MODEL, *v);
            if clipper.abstraction().has_model(&id) {
                for t in transports {
                    let _ = clipper.add_replica(&id, t.clone() as Arc<dyn BatchTransport>);
                }
            }
        }
    }
}

struct Harness {
    spec: SoakSpec,
    store: Arc<clipper_statestore::StateStore>,
    slots: Vec<RwLock<Option<Slot>>>,
    fleet: Fleet,
    recorder: Arc<PhaseRecorder>,
    counters: Vec<FrontendCounters>,
}

impl Harness {
    /// Build frontend `i`. Frontend 0 registers the deployment and
    /// persists it; everyone else (and every restart) rebuilds from the
    /// store — restart-by-rehydration is the normal path here, not a
    /// test fixture.
    async fn build_frontend(&self, i: usize) -> Slot {
        let clipper = Clipper::builder()
            .statestore(self.store.clone())
            .cache_capacity(self.spec.cache_capacity)
            .build();
        let restored = clipper.rehydrate();
        if i == 0 && restored == Default::default() {
            clipper.add_model(ModelId::new(MODEL, 1), BatchConfig::default());
            clipper.add_model(ModelId::new(MODEL, 2), BatchConfig::default());
            clipper.register_app(
                AppConfig::new(APP, vec![ModelId::new(MODEL, 1)])
                    .with_policy(PolicyKind::Static { model_index: 0 })
                    .with_slo(self.spec.slo)
                    .with_default_output(Output::Class(0)),
            );
        }
        self.fleet.attach(&clipper);
        let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
            .await
            .expect("bind soak frontend");
        Slot { clipper, frontend }
    }

    fn clipper(&self, i: usize) -> Option<Clipper> {
        self.slots
            .get(i)
            .and_then(|s| s.read().as_ref().map(|slot| slot.clipper.clone()))
    }

    fn addr(&self, i: usize) -> Option<std::net::SocketAddr> {
        self.slots
            .get(i)
            .and_then(|s| s.read().as_ref().map(|slot| slot.frontend.local_addr()))
    }

    /// Fold every live frontend's current `queue/*` recovery counters
    /// into its high-water marks (see [`FrontendCounters`]). Called
    /// before each timeline action so counts survive queue churn.
    fn sample_recovery_counters(&self) {
        use std::sync::atomic::Ordering;
        for (i, counters) in self.counters.iter().enumerate() {
            if let Some(c) = self.clipper(i) {
                let (retried, hedged) = queue_recovery_counters(c.abstraction().registry());
                counters.peak_retried.fetch_max(retried, Ordering::Relaxed);
                counters.peak_hedged.fetch_max(hedged, Ordering::Relaxed);
            }
        }
    }

    async fn apply(&self, action: &SoakAction) -> Result<String, String> {
        match action {
            SoakAction::Phase(name) => {
                self.recorder.advance(name);
                Ok(format!("phase {name} open"))
            }
            SoakAction::CrashFrontend(i) => {
                let slot = self
                    .slots
                    .get(*i)
                    .ok_or_else(|| format!("no frontend {i}"))?
                    .write()
                    .take();
                match slot {
                    Some(_) => Ok(format!("frontend {i} dropped")),
                    None => Err(format!("frontend {i} already down")),
                }
            }
            SoakAction::RestartFrontend(i) => {
                if self.slots.get(*i).is_none() {
                    return Err(format!("no frontend {i}"));
                }
                let slot = self.build_frontend(*i).await;
                let report = slot.clipper.sync_config().await;
                let summary = format!(
                    "frontend {i} rebuilt: current={:?} sync={:?}",
                    slot.clipper.current_version(MODEL),
                    report.pending
                );
                *self.slots[*i].write() = Some(slot);
                Ok(summary)
            }
            SoakAction::Rollout { version, via } => {
                let addr = self
                    .addr(*via)
                    .ok_or_else(|| format!("frontend {via} down"))?;
                let body = format!("{{\"version\":{version}}}");
                let (status, resp) = http_request(
                    addr,
                    "POST",
                    &format!("/api/v1/models/{MODEL}/rollout"),
                    &body,
                )
                .await
                .map_err(|e| format!("rollout io: {e}"))?;
                if status == 200 {
                    Ok(resp)
                } else {
                    Err(format!("rollout {status}: {resp}"))
                }
            }
            SoakAction::Rollback { via } => {
                let addr = self
                    .addr(*via)
                    .ok_or_else(|| format!("frontend {via} down"))?;
                let (status, resp) = http_request(
                    addr,
                    "POST",
                    &format!("/api/v1/models/{MODEL}/rollback"),
                    "",
                )
                .await
                .map_err(|e| format!("rollback io: {e}"))?;
                if status == 200 {
                    Ok(resp)
                } else {
                    Err(format!("rollback {status}: {resp}"))
                }
            }
            SoakAction::SyncConfig(i) => {
                let clipper = self
                    .clipper(*i)
                    .ok_or_else(|| format!("frontend {i} down"))?;
                let report = clipper.sync_config().await;
                Ok(format!(
                    "f{i}: repointed={} pending={:?} apps+{}~{}-{}",
                    report.repointed,
                    report.pending,
                    report.adopted_apps,
                    report.updated_apps,
                    report.removed_apps
                ))
            }
            SoakAction::FaultOn { version, replica } => {
                let t = self
                    .fleet
                    .transport(*version, *replica)
                    .ok_or_else(|| format!("no fleet replica v{version}r{replica}"))?;
                t.fail_hard(true);
                Ok(format!("v{version}r{replica} black-holed"))
            }
            SoakAction::FaultOff { version, replica } => {
                let t = self
                    .fleet
                    .transport(*version, *replica)
                    .ok_or_else(|| format!("no fleet replica v{version}r{replica}"))?;
                t.fail_hard(false);
                Ok(format!("v{version}r{replica} restored"))
            }
            SoakAction::FlakyReplica {
                version,
                replica,
                drop_prob,
            } => {
                let t = self
                    .fleet
                    .transport(*version, *replica)
                    .ok_or_else(|| format!("no fleet replica v{version}r{replica}"))?;
                t.set_config(FaultConfig {
                    drop_prob: *drop_prob,
                    ..FaultConfig::default()
                });
                Ok(format!("v{version}r{replica} drop_prob={drop_prob}"))
            }
            SoakAction::DrainSuspects => {
                let mut drained = Vec::new();
                for i in 0..self.slots.len() {
                    let Some(clipper) = self.clipper(i) else {
                        continue;
                    };
                    for id in clipper.abstraction().models() {
                        for qid in clipper.drain_suspect_replicas(&id).await {
                            drained.push(format!("f{i}/{qid}"));
                        }
                    }
                }
                if drained.is_empty() {
                    Err("no suspect replicas found to drain".into())
                } else {
                    Ok(format!("drained {drained:?}"))
                }
            }
            SoakAction::RegisterReplica { version, via } => {
                let clipper = self
                    .clipper(*via)
                    .ok_or_else(|| format!("frontend {via} down"))?;
                // Launcher for the announced capability, so the HTTP
                // registration attaches the replica in-process.
                let v = *version;
                clipper
                    .fleet()
                    .add_launcher(Arc::new(clipper_core::FnLauncher::new(
                        FLEET_CAPABILITY,
                        move |_rec| {
                            Arc::new(FnTransport::new(
                                FLEET_REPLICA,
                                move |inputs: &[Input]| {
                                    Ok(PredictReply {
                                        outputs: vec![WireOutput::Class(v); inputs.len()],
                                        queue_us: 0,
                                        compute_us: 50,
                                    })
                                },
                            )) as Arc<dyn BatchTransport>
                        },
                    )));
                let addr = self
                    .addr(*via)
                    .ok_or_else(|| format!("frontend {via} down"))?;
                let body = format!(
                    "{{\"container_name\":\"{FLEET_REPLICA}\",\"model_name\":\"{MODEL}\",\
                     \"model_version\":{version},\"capabilities\":[\"{FLEET_CAPABILITY}\"]}}"
                );
                let (status, resp) = http_request(addr, "POST", "/api/v1/replicas", &body)
                    .await
                    .map_err(|e| format!("register io: {e}"))?;
                if status == 201 && resp.contains("\"queue_id\":\"") {
                    Ok(resp)
                } else {
                    Err(format!("register {status}: {resp}"))
                }
            }
            SoakAction::ExpireReplica { via } => {
                let clipper = self
                    .clipper(*via)
                    .ok_or_else(|| format!("frontend {via} down"))?;
                if clipper.fleet().expire(FLEET_REPLICA).await {
                    Ok(format!("{FLEET_REPLICA} expired and drained"))
                } else {
                    Err(format!("{FLEET_REPLICA} not expirable (not a live member)"))
                }
            }
        }
    }
}

/// Sum the `queue/*/retried` and `queue/*/hedged` counters across every
/// live queue in `registry`. Queues removed from the fleet (drained
/// suspects, rollback churn) unregister their counters, so a single
/// end-of-run read can miss recovery work — the harness instead samples
/// this before every timeline action and keeps per-frontend high-water
/// marks (see [`FrontendCounters`]).
fn queue_recovery_counters(registry: &clipper_metrics::Registry) -> (u64, u64) {
    let snap = registry.snapshot();
    let sum = |suffix: &str| -> u64 {
        snap.values
            .iter()
            .filter(|(name, _)| name.starts_with("queue/") && name.ends_with(suffix))
            .map(|(_, v)| match v {
                clipper_metrics::MetricValue::Counter { value } => *value,
                _ => 0,
            })
            .sum()
    };
    (sum("/retried"), sum("/hedged"))
}

/// Classify one client-visible result.
fn classify(
    result: Result<Result<usize, PredictError>, tokio::time::error::Elapsed>,
) -> (PhaseOutcome, usize) {
    match result {
        Err(_) => (PhaseOutcome::Lost, 0),
        Ok(Err(PredictError::Overloaded)) => (PhaseOutcome::Shed, 0),
        Ok(Err(_)) => (PhaseOutcome::Lost, 0),
        Ok(Ok(missing)) => (PhaseOutcome::Ok, missing),
    }
}

/// Run one soak. Builds the deployment, drives the open-loop mixed
/// workload against all frontends while the timeline fires, waits for
/// every queue to drain, and reports.
pub async fn run_soak(spec: SoakSpec) -> SoakReport {
    let n = spec.frontends.max(1);
    let store = Arc::new(clipper_statestore::StateStore::new());
    let fleet = Fleet::build(spec.replicas_per_version, spec.seed);
    let recorder = PhaseRecorder::new("steady");
    let harness = Arc::new(Harness {
        store,
        slots: (0..n).map(|_| RwLock::new(None)).collect(),
        fleet,
        recorder: recorder.clone(),
        counters: (0..n).map(|_| FrontendCounters::new()).collect(),
        spec,
    });
    // Frontend 0 first (it registers + persists), then the rest fan in.
    for i in 0..n {
        let slot = harness.build_frontend(i).await;
        *harness.slots[i].write() = Some(slot);
    }

    let start = Instant::now();

    // The timeline: one task, events strictly in order.
    let mut events = harness.spec.events.clone();
    events.sort_by_key(|e| e.at);
    let timeline = {
        let harness = harness.clone();
        tokio::spawn(async move {
            let mut outcomes = Vec::with_capacity(events.len());
            for ev in events {
                tokio::time::sleep_until((start + ev.at).into()).await;
                let fired_at = start.elapsed();
                // Capture recovery counters before the action can remove
                // queues (rollback and drain churn unregister them).
                harness.sample_recovery_counters();
                let t0 = Instant::now();
                let result = harness.apply(&ev.action).await;
                outcomes.push(ActionOutcome {
                    label: ev.action.label(),
                    fired_at,
                    took: t0.elapsed(),
                    result,
                });
            }
            outcomes
        })
    };

    // The open-loop mixed workload, round-robined across frontends.
    let contexts: Arc<Vec<String>> = Arc::new(
        (0..harness.spec.contexts.max(1))
            .map(|c| format!("user{c}"))
            .collect(),
    );
    let arrivals = ArrivalProcess::Poisson {
        rate: harness.spec.rate,
    };
    let deadline = start + harness.spec.duration;
    let inflight = Arc::new(tokio::sync::Semaphore::new(65_536));
    let mut issued: u64 = 0;
    let mut next_fire = Instant::now();
    let mut handles = Vec::new();
    for (seq, gap) in arrivals.gaps(harness.spec.seed).enumerate() {
        let seq = seq as u64;
        next_fire += gap;
        if next_fire >= deadline {
            break;
        }
        tokio::time::sleep_until(next_fire.into()).await;
        issued += 1;
        let harness = harness.clone();
        let contexts = contexts.clone();
        let permit = inflight.clone().acquire_owned().await.expect("semaphore");
        handles.push(tokio::spawn(async move {
            let idx = (seq % harness.slots.len() as u64) as usize;
            let t0 = Instant::now();
            let clipper = harness.clipper(idx);
            let Some(clipper) = clipper else {
                harness.counters[idx].refused.inc();
                harness.recorder.record(PhaseOutcome::Refused, 0);
                drop(permit);
                return;
            };
            let spec = &harness.spec;
            // 80/20 hot/cold input mix: the hot eighth of the space keeps
            // the caches warm while the cold stream keeps real batches
            // flowing to the replica fleet (a pure cyclic scan would
            // always evict before reuse and measure nothing).
            let h = (seq ^ spec.seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let val = if (h >> 33) % 10 < 8 {
                (h >> 13) % (spec.input_space / 8).max(1)
            } else {
                (h >> 13) % spec.input_space
            };
            let input: Input = Arc::new(vec![val as f32, idx as f32]);
            let ctx = &contexts[(seq % contexts.len() as u64) as usize];
            let result = tokio::time::timeout(spec.timeout, async {
                if spec.feedback_every > 0 && seq.is_multiple_of(spec.feedback_every) {
                    clipper
                        .feedback(APP, Some(ctx), input, Feedback::class(1))
                        .await
                        .map(|_| 0)
                } else {
                    clipper
                        .predict(APP, Some(ctx), input)
                        .await
                        .map(|p| p.models_missing)
                }
            })
            .await;
            let (outcome, missing) = classify(result);
            let counters = &harness.counters[idx];
            match outcome {
                PhaseOutcome::Ok => {
                    counters.ok.inc();
                    if missing > 0 {
                        counters.degraded.inc();
                    }
                }
                PhaseOutcome::Shed => counters.shed.inc(),
                PhaseOutcome::Refused => counters.refused.inc(),
                PhaseOutcome::Lost => counters.lost.inc(),
            }
            harness
                .recorder
                .record(outcome, t0.elapsed().as_micros() as u64);
            drop(permit);
        }));
        if handles.len() >= 4_096 {
            handles.retain(|h| !h.is_finished());
        }
    }
    for h in handles {
        let _ = h.await;
    }
    let actions = timeline.await.unwrap_or_default();

    // Drain: every accepted query must clear the queues; nothing may be
    // left pending in any cache.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let busy = (0..n).any(|i| {
            harness.clipper(i).is_some_and(|c| {
                c.abstraction()
                    .models()
                    .iter()
                    .any(|m| c.abstraction().queue_depth(m) + c.abstraction().inflight(m) > 0)
            })
        });
        if !busy || Instant::now() >= drain_deadline {
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }

    // Convergence: every live frontend agrees with the persisted record.
    let persisted_current = harness
        .store
        .get(&clipper_core::api::model_key(MODEL))
        .and_then(|b| serde_json::from_slice::<clipper_core::api::ModelRecord>(&b).ok())
        .map(|r| r.current);
    let mut converged = persisted_current.is_some();
    let mut frontends = Vec::with_capacity(n);
    harness.sample_recovery_counters();
    for i in 0..n {
        let counters = &harness.counters[i];
        let retried = counters
            .peak_retried
            .load(std::sync::atomic::Ordering::Relaxed);
        let hedged = counters
            .peak_hedged
            .load(std::sync::atomic::Ordering::Relaxed);
        let (cache, pending_len, current_version, alive) = match harness.clipper(i) {
            Some(c) => {
                let cur = c.current_version(MODEL);
                if cur != persisted_current {
                    converged = false;
                }
                (
                    c.abstraction().cache().stats(),
                    c.abstraction().cache().pending_len(),
                    cur,
                    true,
                )
            }
            None => (CacheStats::default(), 0, None, false),
        };
        frontends.push(FrontendStats {
            ok: counters.ok.get(),
            degraded: counters.degraded.get(),
            shed: counters.shed.get(),
            refused: counters.refused.get(),
            lost: counters.lost.get(),
            retried,
            hedged,
            cache,
            pending_len,
            current_version,
            alive,
        });
    }

    SoakReport {
        issued,
        phases: recorder.phase_stats(),
        totals: recorder.totals(),
        frontends,
        actions,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steady-state fan-in, no events: everything completes, nothing is
    /// lost, both frontends serve, caches drain.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn steady_fan_in_is_lossless() {
        let mut spec = SoakSpec::new(2, 300.0, Duration::from_millis(800));
        // Short run: keep the input space small enough to revisit.
        spec.input_space = 16;
        let report = run_soak(spec).await;
        assert!(report.issued > 100, "traffic flowed: {}", report.issued);
        assert!(report.accounted(), "every arrival accounted");
        assert_eq!(report.lost(), 0, "zero lost: {:?}", report.totals);
        assert!(report.is_lossless());
        assert!(report.converged);
        for (i, f) in report.frontends.iter().enumerate() {
            assert!(f.alive, "frontend {i} up");
            assert!(f.ok > 0, "frontend {i} served: {f:?}");
            assert_eq!(f.pending_len, 0, "frontend {i} cache drained");
            assert_eq!(f.current_version, Some(1));
        }
        // Repeated inputs hit the per-frontend caches.
        let hits: u64 = report.frontends.iter().map(|f| f.cache.hits).sum();
        assert!(hits > 0, "cache warmed: {:?}", report.frontends);
    }

    /// A transient-fault window: one of two replicas drops most requests
    /// for a stretch of the run. With deadline-budgeted retry on (the
    /// default), every affected query is redispatched onto the healthy
    /// sibling — zero client-visible errors, zero degraded fail-fills,
    /// and the `retried` counters show the rescue actually happened.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn flaky_replica_window_is_invisible_to_clients() {
        let mut spec = SoakSpec::new(1, 400.0, Duration::from_millis(900));
        spec.input_space = 16_384; // miss-heavy: real batches reach the fleet
        spec.slo = Duration::from_millis(250); // headroom against CI jitter
        spec.events = vec![
            SoakEvent {
                at: Duration::from_millis(200),
                action: SoakAction::Phase("flaky".into()),
            },
            SoakEvent {
                at: Duration::from_millis(200),
                action: SoakAction::FlakyReplica {
                    version: 1,
                    replica: 0,
                    drop_prob: 0.7,
                },
            },
            SoakEvent {
                at: Duration::from_millis(600),
                action: SoakAction::Phase("healed".into()),
            },
            SoakEvent {
                at: Duration::from_millis(600),
                action: SoakAction::FlakyReplica {
                    version: 1,
                    replica: 0,
                    drop_prob: 0.0,
                },
            },
        ];
        let report = run_soak(spec).await;
        assert!(report.all_actions_ok(), "{:?}", report.actions);
        assert_eq!(report.lost(), 0, "zero lost: {:?}", report.totals);
        assert!(report.is_lossless());
        assert!(
            report.retried() > 0,
            "the flaky window must actually exercise the retry path: {:?}",
            report.frontends
        );
        // The strong claim: failures were *survived*, not surfaced — no
        // query had to fall back to the app's default output.
        for (i, f) in report.frontends.iter().enumerate() {
            assert_eq!(
                f.degraded, 0,
                "frontend {i} fail-filled despite a healthy sibling: {f:?}"
            );
        }
    }

    /// A crash window with no restart: the down frontend's arrivals are
    /// refused — answered, not lost.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn crash_window_refuses_instead_of_losing() {
        let mut spec = SoakSpec::new(2, 300.0, Duration::from_millis(700));
        spec.events = vec![
            SoakEvent {
                at: Duration::from_millis(200),
                action: SoakAction::Phase("down".into()),
            },
            SoakEvent {
                at: Duration::from_millis(200),
                action: SoakAction::CrashFrontend(1),
            },
        ];
        let report = run_soak(spec).await;
        assert_eq!(report.lost(), 0, "{:?}", report.totals);
        assert!(report.all_actions_ok(), "{:?}", report.actions);
        assert!(report.accounted());
        assert!(report.totals.refused > 0, "down window visible");
        assert!(!report.frontends[1].alive);
        assert!(report.frontends[0].alive);
        // The "down" phase is where the refusals live.
        let down = report.phases.iter().find(|p| p.name == "down").unwrap();
        assert!(down.refused > 0);
        assert_eq!(report.phases[0].refused, 0, "steady phase was clean");
    }
}
