//! Allocations-per-request harness (`BENCH_alloc_count.json`).
//!
//! A counting `#[global_allocator]` wraps `std::alloc::System` and
//! counts every `alloc` / `alloc_zeroed` / `realloc` in the process.
//! Each scenario runs a fixed closed-loop iteration count over real
//! localhost TCP and reports the per-iteration allocation delta, plus
//! the per-iteration TCP write-op delta from the vendored runtime's
//! write counters (one request–response round trip should cost one
//! kernel write per direction — two ops total).
//!
//! Scenarios:
//!
//! - `echo` — 64-byte TCP echo RTT (floor: the runtime itself);
//! - `rpc_predict1` — clipper-rpc `predict_batch` b=1 against a No-Op
//!   container (frame codec + writer task + oneshot completion);
//! - `http_predict` — keep-alive HTTP predict against an in-process echo
//!   transport (head parse, routing, JSON in/out — the paper's §4 predict
//!   hot path end to end);
//! - `control_get` — keep-alive `GET /api/v1/apps` (control-plane read).
//!
//! `baseline_allocs_per_iter` rows carry the numbers recorded
//! immediately **before** the wire-speed data-plane rework (buffer
//! reuse, writev coalescing, zero-alloc routing) so the reduction is
//! visible in one file. With `ALLOC_COUNT_ENFORCE=1` the binary exits
//! non-zero if the emitted JSON fails to parse back, any scenario
//! regresses above its ceiling, the predict-b=1 RPC-path reduction vs
//! baseline falls under 50%, or a request-response round trip costs
//! more than one write syscall per direction. (`http_predict` crosses
//! the full model abstraction layer — batching, cache, policy — whose
//! allocations are out of scope for the wire rework, so its reduction
//! is reported but the 50% gate applies to the RPC predict path.)
//!
//! Flags: `--smoke` (fewer iterations for CI), `--out <path>` (default
//! `BENCH_alloc_count.json`).

use clipper_bench::http_bench::{get_request, predict_request, start_echo_frontend, HttpClient};
use clipper_metrics::Histogram;
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::BatchTransport;
use clipper_rpc::{serve_container, ContainerClientConfig, RpcServer};
use clipper_workload::Table;
use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Allocation events since process start (alloc + alloc_zeroed + realloc).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no allocation side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// `(allocations, tcp write ops)` so far, for before/after deltas.
fn counters() -> (u64, u64) {
    let (w, wv) = tokio::net::tcp_write_op_counts();
    (ALLOCS.load(Ordering::Relaxed), w + wv)
}

#[derive(Serialize, Deserialize)]
struct Scenario {
    name: String,
    iters: u64,
    allocs_per_iter: f64,
    write_ops_per_iter: f64,
    /// Same measurement recorded before the wire-speed rework.
    baseline_allocs_per_iter: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    reactor_active: bool,
    scenarios: Vec<Scenario>,
    /// `1 - after/before` on the `rpc_predict1` scenario (the gated
    /// predict-path number).
    predict_alloc_reduction: f64,
    /// `1 - after/before` on the end-to-end `http_predict` scenario.
    http_alloc_reduction: f64,
}

/// Per-iteration allocation counts recorded immediately before the
/// wire-speed data-plane rework, same host class and iteration counts.
const BASELINE_ALLOCS_PER_ITER: [(&str, f64); 4] = [
    ("echo", 0.0),
    ("rpc_predict1", 27.0),
    ("http_predict", 46.5),
    ("control_get", 50.0),
];

/// Regression ceilings on allocations/iteration (measured value —
/// 0.0 / 12.0 / 29.0 / 10.0 — plus headroom for executor scheduling
/// noise). `http_predict` ratcheted from 42.0 after the single-model
/// predict fast path dropped it from 33.6 to 29.0.
const ALLOC_CEILINGS: [(&str, f64); 4] = [
    ("echo", 2.0),
    ("rpc_predict1", 18.0),
    ("http_predict", 33.0),
    ("control_get", 15.0),
];

fn baseline_for(name: &str) -> f64 {
    BASELINE_ALLOCS_PER_ITER
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

async fn run_echo(iters: u64) -> Scenario {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        conn.set_nodelay(true).unwrap();
        let mut buf = [0u8; 64];
        while conn.read_exact(&mut buf).await.is_ok() {
            if conn.write_all(&buf).await.is_err() {
                break;
            }
        }
    });
    let mut client = TcpStream::connect(addr).await.unwrap();
    client.set_nodelay(true).unwrap();
    let msg = [0x5au8; 64];
    let mut buf = [0u8; 64];
    for _ in 0..200 {
        client.write_all(&msg).await.unwrap();
        client.read_exact(&mut buf).await.unwrap();
    }
    let (a0, w0) = counters();
    for _ in 0..iters {
        client.write_all(&msg).await.unwrap();
        client.read_exact(&mut buf).await.unwrap();
    }
    let (a1, w1) = counters();
    drop(client);
    server.abort();
    Scenario {
        name: "echo".into(),
        iters,
        allocs_per_iter: (a1 - a0) as f64 / iters as f64,
        write_ops_per_iter: (w1 - w0) as f64 / iters as f64,
        baseline_allocs_per_iter: baseline_for("echo"),
    }
}

async fn run_rpc_predict1(iters: u64) -> Scenario {
    let mut server = RpcServer::bind("127.0.0.1:0").await.unwrap();
    let addr = server.local_addr();
    let container = tokio::spawn(async move {
        let _ = serve_container(
            addr,
            ContainerClientConfig {
                container_name: "noop-0".into(),
                model_name: "noop".into(),
                model_version: 1,
            },
            Arc::new(|inputs: Vec<clipper_rpc::Input>| {
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }),
        )
        .await;
    });
    let (_info, handle) = server.next_container().await.expect("container registers");
    let inputs: Vec<clipper_rpc::Input> = vec![Arc::new(vec![1.0f32; 8])];
    for _ in 0..200 {
        handle.predict_batch(&inputs).await.unwrap();
    }
    let (a0, w0) = counters();
    for _ in 0..iters {
        handle.predict_batch(&inputs).await.unwrap();
    }
    let (a1, w1) = counters();
    container.abort();
    Scenario {
        name: "rpc_predict1".into(),
        iters,
        allocs_per_iter: (a1 - a0) as f64 / iters as f64,
        write_ops_per_iter: (w1 - w0) as f64 / iters as f64,
        baseline_allocs_per_iter: baseline_for("rpc_predict1"),
    }
}

async fn run_http(name: &str, request: Vec<u8>, iters: u64) -> Scenario {
    let (frontend, _clipper) = start_echo_frontend().await;
    let mut client = HttpClient::connect(frontend.local_addr()).await;
    for _ in 0..200 {
        assert_eq!(client.call(&request).await, 200);
    }
    let (a0, w0) = counters();
    for _ in 0..iters {
        client.call(&request).await;
    }
    let (a1, w1) = counters();
    Scenario {
        name: name.into(),
        iters,
        allocs_per_iter: (a1 - a0) as f64 / iters as f64,
        write_ops_per_iter: (w1 - w0) as f64 / iters as f64,
        baseline_allocs_per_iter: baseline_for(name),
    }
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut iters: u64 = 3000;
    let mut out_path = "BENCH_alloc_count.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => iters = 500,
            "--iters" => {
                i += 1;
                iters = args[i].parse().expect("--iters <u64>");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other:?} (see --smoke/--iters/--out)"),
        }
        i += 1;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reactor_active = tokio::net::io_mode() == tokio::net::IoMode::Reactor;

    // Touch the Histogram type once so its lazy internals are warm before
    // any measured loop (the metrics registry allocates on first use).
    let warm = Histogram::new();
    warm.record(1);

    println!("== alloc_count: allocations/request, {cores} cores, {iters} iters/scenario ==\n");

    let scenarios = vec![
        run_echo(iters).await,
        run_rpc_predict1(iters).await,
        run_http("http_predict", predict_request(7), iters).await,
        run_http("control_get", get_request("/api/v1/apps"), iters).await,
    ];

    let mut table = Table::new(&[
        "scenario",
        "iters",
        "allocs/iter",
        "writes/iter",
        "baseline allocs/iter",
    ]);
    for s in &scenarios {
        table.row(&[
            s.name.clone(),
            format!("{}", s.iters),
            format!("{:.1}", s.allocs_per_iter),
            format!("{:.2}", s.write_ops_per_iter),
            format!("{:.1}", s.baseline_allocs_per_iter),
        ]);
    }
    table.print();

    let reduction_for = |name: &str| -> f64 {
        let s = scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} scenario"));
        if s.baseline_allocs_per_iter > 0.0 {
            1.0 - s.allocs_per_iter / s.baseline_allocs_per_iter
        } else {
            0.0
        }
    };
    let predict_alloc_reduction = reduction_for("rpc_predict1");
    let http_alloc_reduction = reduction_for("http_predict");
    for name in ["rpc_predict1", "http_predict"] {
        let s = scenarios.iter().find(|s| s.name == name).unwrap();
        println!(
            "\n{name}: {:.1} allocs/iter vs {:.1} baseline ({:.0}% reduction), {:.2} write ops/iter",
            s.allocs_per_iter,
            s.baseline_allocs_per_iter,
            reduction_for(name) * 100.0,
            s.write_ops_per_iter,
        );
    }

    let report = Report {
        bench: "alloc_count".to_string(),
        cores,
        reactor_active,
        scenarios,
        predict_alloc_reduction,
        http_alloc_reduction,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    assert!(
        parsed.scenarios.iter().all(|s| s.iters > 0),
        "malformed report: a scenario recorded zero iterations"
    );

    if std::env::var("ALLOC_COUNT_ENFORCE").as_deref() == Ok("1") {
        let mut ok = true;
        for s in &parsed.scenarios {
            let ceiling = ALLOC_CEILINGS
                .iter()
                .find(|(n, _)| *n == s.name)
                .map(|(_, v)| *v)
                .unwrap_or(f64::MAX);
            if s.allocs_per_iter > ceiling {
                eprintln!(
                    "FAIL: {} allocates {:.1}/iter, above the {ceiling:.1} ceiling",
                    s.name, s.allocs_per_iter
                );
                ok = false;
            }
        }
        if predict_alloc_reduction < 0.5 {
            eprintln!(
                "FAIL: rpc_predict1 allocation reduction {:.0}% is below the 50% gate",
                predict_alloc_reduction * 100.0
            );
            ok = false;
        }
        // One kernel write per response direction: a request–response
        // round trip is one client write + one server write. Allow a
        // little headroom for stray background traffic.
        for name in ["rpc_predict1", "http_predict", "control_get"] {
            let s = parsed.scenarios.iter().find(|s| s.name == name).unwrap();
            if s.write_ops_per_iter > 2.5 {
                eprintln!(
                    "FAIL: {} costs {:.2} write syscalls/iter (want ≤ 2 + noise headroom)",
                    name, s.write_ops_per_iter
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "enforce: ok (ceilings held; predict reduction {:.0}% ≥ 50%; ≤1 write/direction)",
            predict_alloc_reduction * 100.0
        );
    }
}
