//! Contextual selection-state management (§5.3).
//!
//! "The model selection layer can be configured to instantiate a unique
//! model selection state for each user, context, or session", held in an
//! external store (the paper uses Redis; we use `clipper-statestore`).
//! Updates are optimistic read-modify-write: feedback for the same context
//! arriving concurrently retries on CAS conflict, so no observation is
//! silently dropped.

use super::{PolicyState, SelectionPolicy};
use crate::types::ModelId;
use clipper_statestore::{CasOutcome, StateStore};
use std::sync::Arc;

/// Maximum CAS retries before giving up on an observation.
const MAX_CAS_RETRIES: usize = 16;

/// Manages per-(app, context) policy state in a statestore.
#[derive(Clone)]
pub struct SelectionStateManager {
    store: Arc<StateStore>,
}

/// Errors from state management.
#[derive(Debug, PartialEq, Eq)]
pub enum StateError {
    /// State bytes failed to deserialize (e.g. version skew).
    Corrupt(String),
    /// CAS contention exceeded the retry budget.
    Contention,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Corrupt(m) => write!(f, "corrupt selection state: {m}"),
            StateError::Contention => write!(f, "selection state contention"),
        }
    }
}

impl std::error::Error for StateError {}

impl SelectionStateManager {
    /// Create a manager over `store`.
    pub fn new(store: Arc<StateStore>) -> Self {
        SelectionStateManager { store }
    }

    fn key(app: &str, context: Option<&str>) -> String {
        format!("selstate/{app}/{}", context.unwrap_or("_global"))
    }

    /// Hash a context name into a stable per-context seed component.
    fn context_seed(app_seed: u64, context: Option<&str>) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        app_seed.hash(&mut h);
        context.unwrap_or("_global").hash(&mut h);
        h.finish()
    }

    /// Fetch the state for `(app, context)`, initializing it (and storing
    /// the initial copy) if absent.
    pub fn get_or_init(
        &self,
        app: &str,
        context: Option<&str>,
        policy: &dyn SelectionPolicy,
        models: &[ModelId],
        app_seed: u64,
    ) -> Result<PolicyState, StateError> {
        let key = Self::key(app, context);
        if let Some(bytes) = self.store.get(&key) {
            return serde_json::from_slice(&bytes).map_err(|e| StateError::Corrupt(e.to_string()));
        }
        let state = policy.init(models, Self::context_seed(app_seed, context));
        let bytes = serde_json::to_vec(&state).expect("policy state serializes");
        // Lost race is fine: read back the winner.
        if !self.store.set_nx(&key, bytes) {
            if let Some(bytes) = self.store.get(&key) {
                return serde_json::from_slice(&bytes)
                    .map_err(|e| StateError::Corrupt(e.to_string()));
            }
        }
        Ok(state)
    }

    /// Read-modify-write the state under optimistic concurrency.
    pub fn update<F>(
        &self,
        app: &str,
        context: Option<&str>,
        policy: &dyn SelectionPolicy,
        models: &[ModelId],
        app_seed: u64,
        mut mutate: F,
    ) -> Result<PolicyState, StateError>
    where
        F: FnMut(&mut PolicyState),
    {
        let key = Self::key(app, context);
        for _ in 0..MAX_CAS_RETRIES {
            // Ensure it exists.
            let (bytes, version) = match self.store.get_versioned(&key) {
                Some(x) => x,
                None => {
                    let state = policy.init(models, Self::context_seed(app_seed, context));
                    let bytes = serde_json::to_vec(&state).expect("state serializes");
                    self.store.set_nx(&key, bytes);
                    continue;
                }
            };
            let mut state: PolicyState =
                serde_json::from_slice(&bytes).map_err(|e| StateError::Corrupt(e.to_string()))?;
            mutate(&mut state);
            let new_bytes = serde_json::to_vec(&state).expect("state serializes");
            match self.store.cas(&key, version, new_bytes) {
                CasOutcome::Stored(_) => return Ok(state),
                CasOutcome::Conflict(_) | CasOutcome::Missing => continue,
            }
        }
        Err(StateError::Contention)
    }

    /// Drop the state for a context (e.g. user reset).
    pub fn reset(&self, app: &str, context: Option<&str>) {
        self.store.del(&Self::key(app, context));
    }

    /// Number of stored contexts across all apps.
    pub fn context_count(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::policies::Exp3Policy;

    fn models(n: usize) -> Vec<ModelId> {
        (0..n).map(|i| ModelId::new(&format!("m{i}"), 1)).collect()
    }

    fn manager() -> SelectionStateManager {
        SelectionStateManager::new(Arc::new(StateStore::new()))
    }

    #[test]
    fn init_then_get_is_stable() {
        let mgr = manager();
        let p = Exp3Policy::new(0.1);
        let ms = models(3);
        let s1 = mgr.get_or_init("app", Some("user1"), &p, &ms, 7).unwrap();
        let s2 = mgr.get_or_init("app", Some("user1"), &p, &ms, 7).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.models, ms);
    }

    #[test]
    fn contexts_are_isolated() {
        let mgr = manager();
        let p = Exp3Policy::new(0.1);
        let ms = models(2);
        mgr.update("app", Some("u1"), &p, &ms, 0, |s| s.weights[0] = 9.0)
            .unwrap();
        let s1 = mgr.get_or_init("app", Some("u1"), &p, &ms, 0).unwrap();
        let s2 = mgr.get_or_init("app", Some("u2"), &p, &ms, 0).unwrap();
        assert_eq!(s1.weights[0], 9.0);
        assert_eq!(s2.weights[0], 1.0);
        assert_eq!(mgr.context_count(), 2);
    }

    #[test]
    fn different_contexts_get_different_seeds() {
        let mgr = manager();
        let p = Exp3Policy::new(0.1);
        let ms = models(2);
        let s1 = mgr.get_or_init("app", Some("u1"), &p, &ms, 0).unwrap();
        let s2 = mgr.get_or_init("app", Some("u2"), &p, &ms, 0).unwrap();
        assert_ne!(s1.seed, s2.seed);
    }

    #[test]
    fn update_persists() {
        let mgr = manager();
        let p = Exp3Policy::new(0.1);
        let ms = models(2);
        mgr.update("app", None, &p, &ms, 0, |s| {
            s.total = 41;
        })
        .unwrap();
        mgr.update("app", None, &p, &ms, 0, |s| {
            s.total += 1;
        })
        .unwrap();
        let s = mgr.get_or_init("app", None, &p, &ms, 0).unwrap();
        assert_eq!(s.total, 42);
    }

    #[test]
    fn reset_clears_state() {
        let mgr = manager();
        let p = Exp3Policy::new(0.1);
        let ms = models(2);
        mgr.update("app", Some("u"), &p, &ms, 0, |s| s.total = 5)
            .unwrap();
        mgr.reset("app", Some("u"));
        let s = mgr.get_or_init("app", Some("u"), &p, &ms, 0).unwrap();
        assert_eq!(s.total, 0);
    }

    #[test]
    fn concurrent_updates_all_land() {
        let mgr = manager();
        let p = Arc::new(Exp3Policy::new(0.1));
        let ms = models(2);
        // Pre-create.
        mgr.get_or_init("app", None, p.as_ref(), &ms, 0).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mgr = mgr.clone();
            let p = p.clone();
            let ms = ms.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    mgr.update("app", None, p.as_ref(), &ms, 0, |s| s.total += 1)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = mgr.get_or_init("app", None, p.as_ref(), &ms, 0).unwrap();
        assert_eq!(s.total, 400, "no lost updates under contention");
    }

    #[test]
    fn corrupt_state_is_reported() {
        let mgr = manager();
        let p = Exp3Policy::new(0.1);
        let ms = models(2);
        // Write garbage where state should be.
        let store = Arc::new(StateStore::new());
        store.set("selstate/app/_global", b"not json".to_vec());
        let mgr2 = SelectionStateManager::new(store);
        assert!(matches!(
            mgr2.get_or_init("app", None, &p, &ms, 0),
            Err(StateError::Corrupt(_))
        ));
        // The clean manager still works.
        assert!(mgr.get_or_init("app", None, &p, &ms, 0).is_ok());
    }
}
