//! Online quantile-regression batch-size controller (§4.3.1).
//!
//! The paper's measurements showed batch latency is nearly linear in batch
//! size, so it "explored the use of quantile regression to estimate the
//! 99th-percentile latency as a function of batch size and set the maximum
//! batch size accordingly". This controller keeps a sliding window of
//! `(batch, latency)` observations and periodically refits
//!
//! ```text
//! P99latency(b) ≈ α + β · b
//! ```
//!
//! as ordinary least squares inflated by the 99th percentile of window
//! residuals (an upper regression line), then proposes
//! `max_batch = (SLO − α) / β`. Growth is limited to 2× the largest batch
//! actually observed, so the controller explores upward instead of
//! trusting wild extrapolation.

use super::BatchController;
use std::collections::VecDeque;
use std::time::Duration;

/// Observations kept in the sliding window.
const WINDOW: usize = 512;
/// Refit every this many observations.
const REFIT_EVERY: u64 = 16;

/// Windowed P99-latency regression controller.
#[derive(Clone, Debug)]
pub struct QuantileController {
    slo_us: f64,
    cap: usize,
    window: VecDeque<(f64, f64)>, // (batch, latency µs)
    observations: u64,
    /// Current intercept (µs) of the P99 line.
    alpha: f64,
    /// Current slope (µs/item) of the P99 line.
    beta: f64,
    current_max: usize,
}

impl QuantileController {
    /// Create a controller targeting `slo` with max batch `cap`.
    pub fn new(slo: Duration, cap: usize) -> Self {
        let slo_us = slo.as_micros() as f64;
        QuantileController {
            slo_us,
            cap: cap.max(1),
            window: VecDeque::with_capacity(WINDOW),
            observations: 0,
            alpha: 0.0,
            // Conservative initial model: the whole budget fits 4 items.
            beta: slo_us / 4.0,
            current_max: 4,
        }
    }

    /// Current model estimate `(α µs, β µs/item)`.
    pub fn estimate(&self) -> (f64, f64) {
        (self.alpha, self.beta)
    }

    /// Predicted P99 latency (µs) for a batch of `b`.
    pub fn predict_latency_us(&self, b: usize) -> f64 {
        self.alpha + self.beta * b as f64
    }

    fn refit(&mut self) {
        let n = self.window.len();
        if n < 4 {
            return;
        }
        // Ordinary least squares over the window.
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0, 0.0, 0.0);
        for &(x, y) in &self.window {
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let nf = n as f64;
        let denom = nf * sxx - sx * sx;
        let (a, b) = if denom.abs() < 1e-9 {
            // All batches the same size: flat line through the mean.
            (sy / nf, 0.0)
        } else {
            let b = (nf * sxy - sx * sy) / denom;
            let a = (sy - b * sx) / nf;
            (a, b)
        };
        // Inflate to the 99th percentile of residuals: an upper line that
        // ~99% of observations sit below.
        let mut residuals: Vec<f64> = self.window.iter().map(|&(x, y)| y - (a + b * x)).collect();
        residuals.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((0.99 * (n as f64 - 1.0)).round() as usize).min(n - 1);
        let p99_resid = residuals[idx].max(0.0);

        self.alpha = (a + p99_resid).max(0.0);
        self.beta = b.max(1e-3); // latency can't improve with batch size
        let target = (self.slo_us - self.alpha) / self.beta;

        // Explore upward gradually: at most 2× the largest observed batch.
        let max_seen = self.window.iter().map(|&(x, _)| x).fold(1.0f64, f64::max);
        let limited = target.min(max_seen * 2.0).max(1.0);
        self.current_max = (limited.floor() as usize).clamp(1, self.cap);
    }
}

impl BatchController for QuantileController {
    fn max_batch(&self) -> usize {
        self.current_max
    }

    fn record(&mut self, batch_size: usize, latency: Duration) {
        if self.window.len() == WINDOW {
            self.window.pop_front();
        }
        self.window
            .push_back((batch_size as f64, latency.as_micros() as f64));
        self.observations += 1;
        if self.observations.is_multiple_of(REFIT_EVERY) {
            self.refit();
        }
    }

    fn name(&self) -> &'static str {
        "quantile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn starts_conservative() {
        let c = QuantileController::new(ms(20), 4096);
        let b = c.max_batch();
        assert!((1..=64).contains(&b), "initial batch {b} should be small");
    }

    #[test]
    fn converges_to_linear_container_knee() {
        // Container: latency = 1ms + 20µs/item. SLO 20ms → knee at
        // (20000-1000)/20 = 950.
        let mut c = QuantileController::new(ms(20), 4096);
        for _ in 0..2_000 {
            let b = c.max_batch();
            let lat = Duration::from_micros(1_000 + 20 * b as u64);
            c.record(b, lat);
        }
        let b = c.max_batch();
        assert!(
            (800..=1000).contains(&b),
            "converged batch {b}, expected ≈950 (est {:?})",
            c.estimate()
        );
    }

    #[test]
    fn estimate_tracks_true_slope() {
        let mut c = QuantileController::new(ms(20), 4096);
        for _ in 0..2_000 {
            let b = c.max_batch();
            let lat = Duration::from_micros(2_000 + 50 * b as u64);
            c.record(b, lat);
        }
        let (_, slope) = c.estimate();
        assert!(
            (40.0..=60.0).contains(&slope),
            "learned slope {slope} µs/item, true 50"
        );
    }

    #[test]
    fn expensive_models_get_tiny_batches() {
        // Kernel-SVM-like: 3.3ms/item. SLO 20ms → knee ≈ 5.
        let mut c = QuantileController::new(ms(20), 4096);
        for _ in 0..2_000 {
            let b = c.max_batch();
            let lat = Duration::from_micros(800 + 3_300 * b as u64);
            c.record(b, lat);
        }
        let b = c.max_batch();
        assert!((2..=10).contains(&b), "batch {b}, expected ≈5");
    }

    #[test]
    fn respects_cap() {
        let mut c = QuantileController::new(ms(20), 128);
        for _ in 0..2_000 {
            let b = c.max_batch();
            c.record(b, Duration::from_micros(100 + b as u64));
        }
        assert_eq!(c.max_batch(), 128);
    }

    #[test]
    fn growth_is_limited_to_double_observed() {
        let mut c = QuantileController::new(ms(1000), 4096); // huge SLO
                                                             // Even with a generous SLO, one refit can at most double the
                                                             // explored batch size.
        for _ in 0..REFIT_EVERY {
            c.record(4, Duration::from_micros(100));
        }
        assert!(
            c.max_batch() <= 8,
            "after one refit at batch 4, limit is ≤8, got {}",
            c.max_batch()
        );
    }

    #[test]
    fn p99_line_sits_above_the_median() {
        // Latency = 5ms + 10µs/item, with 1-in-50 batches spiking 3×. The
        // fitted line should absorb the spikes into α.
        let mut c = QuantileController::new(ms(40), 4096);
        for i in 0..5_000u64 {
            let b = c.max_batch();
            let base = 5_000 + 10 * b as u64;
            let lat = if i.is_multiple_of(50) { base * 3 } else { base };
            c.record(b, Duration::from_micros(lat));
        }
        let b = c.max_batch();
        let pred = c.predict_latency_us(b);
        let median = 5_000.0 + 10.0 * b as f64;
        assert!(
            pred > median * 1.5,
            "P99 estimate {pred:.0}µs should sit well above the median {median:.0}µs"
        );
        // And the proposed batch keeps even spiky batches near the SLO:
        // 3×(5ms + 10µs·b) ≤ ~40ms → b ≲ 830.
        assert!(b <= 900, "batch {b} ignores the spikes");
    }

    #[test]
    fn adapts_downward_when_container_slows() {
        let mut c = QuantileController::new(ms(20), 4096);
        for _ in 0..1_000 {
            let b = c.max_batch();
            c.record(b, Duration::from_micros(500 + 15 * b as u64));
        }
        let fast = c.max_batch();
        // Container slows 4× (e.g. contention).
        for _ in 0..1_000 {
            let b = c.max_batch();
            c.record(b, Duration::from_micros(500 + 60 * b as u64));
        }
        let slow = c.max_batch();
        assert!(
            slow < fast / 2,
            "limit should shrink when the container slows: {fast} -> {slow}"
        );
    }
}
