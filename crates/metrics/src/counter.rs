//! Lock-free counters and gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying value; increments are relaxed atomics so a
/// counter on the hot serving path costs one uncontended atomic add.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Create a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    ///
    /// Used by experiment harnesses that measure per-interval deltas.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, current batch size, ...).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Create a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_shared_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn counter_concurrent_increments_all_land() {
        let c = Counter::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_add_dec() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.dec();
        g.inc();
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn gauge_can_go_negative() {
        let g = Gauge::new();
        g.dec();
        g.dec();
        assert_eq!(g.get(), -2);
    }
}
