//! Minimal API-compatible substitute for [`tokio`].
//!
//! The build environment has no crate-registry access, so the workspace
//! vendors the tokio surface it uses, implemented from scratch on `std`:
//!
//! - [`runtime`]: a global multi-threaded executor (work queue + worker
//!   threads) plus a dedicated timer thread; [`spawn`] and
//!   [`runtime::Runtime::block_on`] behave like tokio's.
//! - [`time`]: `sleep` / `sleep_until` / `timeout` / `timeout_at` and a
//!   monotonic [`time::Instant`], driven by the timer thread.
//! - [`sync`]: `mpsc` (bounded + unbounded), `oneshot`, `Semaphore` with
//!   owned permits, and an async `Mutex`.
//! - [`net`]: nonblocking `TcpListener` / `TcpStream` over `std::net`,
//!   with readiness from the raw-syscall epoll [`reactor`] on Linux
//!   x86_64/aarch64 (edge-triggered interest, wake exactly on kernel
//!   readiness, timer-heap deadline as the `epoll_pwait2` park timeout).
//!   Non-Linux hosts fall back to the original emulation: retry
//!   `WouldBlock` operations on a short timer backoff (20 µs → 1 ms).
//! - [`io`]: `AsyncRead` / `AsyncWrite`, the `*Ext` combinators used by
//!   the RPC codec and frontend, `BufReader`, and in-memory [`io::duplex`]
//!   pipes.
//! - `#[tokio::main]` / `#[tokio::test]` attribute macros and [`join!`].
//!
//! Unsupported tokio features simply do not exist here, so misuse is a
//! compile error rather than a runtime surprise.

pub mod io;
pub mod net;
#[cfg(vendored_reactor)]
pub mod reactor;
pub mod runtime;
pub mod sync;
#[cfg(vendored_reactor)]
pub(crate) mod sys;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};

/// Support functions used by this crate's macros; not public API.
#[doc(hidden)]
pub mod macros_support {
    use std::future::{poll_fn, Future};
    use std::pin::Pin;
    use std::task::Poll;

    /// Poll a set of boxed futures to completion concurrently.
    pub async fn join_all<T>(mut futs: Vec<Pin<Box<dyn Future<Output = T> + '_>>>) -> Vec<T> {
        let mut done: Vec<Option<T>> = futs.iter().map(|_| None).collect();
        poll_fn(|cx| {
            let mut pending = false;
            for (slot, fut) in done.iter_mut().zip(futs.iter_mut()) {
                if slot.is_none() {
                    match fut.as_mut().poll(cx) {
                        Poll::Ready(v) => *slot = Some(v),
                        Poll::Pending => pending = true,
                    }
                }
            }
            if pending {
                Poll::Pending
            } else {
                Poll::Ready(())
            }
        })
        .await;
        done.into_iter().map(|v| v.expect("joined")).collect()
    }

    /// Join two differently-typed futures.
    pub async fn join2<A: Future, B: Future>(a: A, b: B) -> (A::Output, B::Output) {
        let mut a = Box::pin(a);
        let mut b = Box::pin(b);
        let mut ra = None;
        let mut rb = None;
        poll_fn(|cx| {
            if ra.is_none() {
                if let Poll::Ready(v) = a.as_mut().poll(cx) {
                    ra = Some(v);
                }
            }
            if rb.is_none() {
                if let Poll::Ready(v) = b.as_mut().poll(cx) {
                    rb = Some(v);
                }
            }
            if ra.is_some() && rb.is_some() {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        })
        .await;
        (ra.unwrap(), rb.unwrap())
    }

    /// Join three differently-typed futures.
    pub async fn join3<A: Future, B: Future, C: Future>(
        a: A,
        b: B,
        c: C,
    ) -> (A::Output, B::Output, C::Output) {
        let ((ra, rb), rc) = join2(join2(a, b), c).await;
        (ra, rb, rc)
    }

    /// Join four differently-typed futures.
    pub async fn join4<A: Future, B: Future, C: Future, D: Future>(
        a: A,
        b: B,
        c: C,
        d: D,
    ) -> (A::Output, B::Output, C::Output, D::Output) {
        let ((ra, rb), (rc, rd)) = join2(join2(a, b), join2(c, d)).await;
        (ra, rb, rc, rd)
    }
}

/// Await multiple futures concurrently, returning all outputs as a tuple.
#[macro_export]
macro_rules! join {
    ($a:expr $(,)?) => {{
        ($a.await,)
    }};
    ($a:expr, $b:expr $(,)?) => {
        $crate::macros_support::join2($a, $b).await
    };
    ($a:expr, $b:expr, $c:expr $(,)?) => {
        $crate::macros_support::join3($a, $b, $c).await
    };
    ($a:expr, $b:expr, $c:expr, $d:expr $(,)?) => {
        $crate::macros_support::join4($a, $b, $c, $d).await
    };
}
