//! An async mutex whose guard may be held across `.await` points.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::future::poll_fn;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;
use std::task::{Poll, Waker};

struct LockState {
    locked: bool,
    waiters: VecDeque<Waker>,
}

/// An asynchronous mutual-exclusion lock, mirroring `tokio::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    state: StdMutex<LockState>,
    value: UnsafeCell<T>,
}

// SAFETY: access to `value` is serialized by the `locked` flag; the guard
// is the only accessor while `locked` is true.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new async mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            state: StdMutex::new(LockState {
                locked: false,
                waiters: VecDeque::new(),
            }),
            value: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, waiting asynchronously if it is held.
    pub async fn lock(&self) -> MutexGuard<'_, T> {
        poll_fn(|cx| {
            let mut s = self.state.lock().unwrap();
            if s.locked {
                s.waiters.push_back(cx.waker().clone());
                Poll::Pending
            } else {
                s.locked = true;
                Poll::Ready(())
            }
        })
        .await;
        MutexGuard { mutex: self }
    }

    /// Acquire without waiting.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let mut s = self.state.lock().unwrap();
        if s.locked {
            None
        } else {
            s.locked = true;
            drop(s);
            Some(MutexGuard { mutex: self })
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the logical lock.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the logical lock exclusively.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Wake all waiters: a stale waker from a cancelled lock() future
        // would otherwise swallow the single wake and strand a live
        // waiter. Survivors re-contend and re-register.
        let wakers: Vec<Waker> = {
            let mut s = self.mutex.state.lock().unwrap();
            s.locked = false;
            s.waiters.drain(..).collect()
        };
        for w in wakers {
            w.wake();
        }
    }
}
