//! Minimal API-compatible substitute for [`proptest`].
//!
//! Provides the subset `tests/properties.rs` uses: the [`Strategy`]
//! abstraction (`prop_map`, ranges, tuples, [`collection::vec`],
//! [`prelude::any`], [`prelude::Just`], `prop_oneof!`, simple string
//! patterns), the `proptest!` runner macro, and `prop_assert*`.
//!
//! Differences from real proptest, on purpose:
//! - **no shrinking** — a failing case reports its seed and case number
//!   instead of a minimized input;
//! - string "regex" strategies support the subset used here: literal
//!   chars, `.`, character classes `[a-z]`, and `{m,n}` / `*` / `+`
//!   quantifiers;
//! - cases are generated from a fixed deterministic seed, so failures
//!   reproduce without a persistence file.

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

use rand::prelude::*;

/// Failure raised by `prop_assert!` and friends inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (base seed ⊕ case index).
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0xC11F_FE12_0000_0000 ^ case)
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Choose uniformly among several same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(&left == &right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                ::std::stringify!($left),
                ::std::stringify!($right)
            )));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if &left == &right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                left,
                right,
                ::std::stringify!($left),
                ::std::stringify!($right)
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` is
/// expanded into a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __rng = $crate::case_rng(case as u64);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            ::std::stringify!($name),
                            cfg.cases,
                        );
                    }
                }
            }
        )*
    };
}
