//! Application-facing HTTP frontend (§3's "REST API").
//!
//! A deliberately small HTTP/1.1 server on tokio — request line, headers,
//! `Content-Length` body — serving:
//!
//! - `POST /apps/{app}/predict` with `{"input": [..], "context": "u1"}`
//!   → `{"output": .., "confidence": .., "latency_us": ..}`
//! - `POST /apps/{app}/update` with `{"input": [..], "label": 3}` or
//!   `{"labels": [..]}` (feedback, §5)
//! - `GET /models` → per-model scheduler state: replica queue ids, live
//!   queue depth, and in-flight queries
//! - `GET /metrics` → registry snapshot JSON
//! - `GET /health` → `ok`
//!
//! Connections are keep-alive; one request is served at a time per
//! connection (standard HTTP/1.1 without pipelining).

use crate::clipper::Clipper;
use crate::types::{Feedback, Output};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream};

/// Maximum accepted request body (4 MiB).
const MAX_BODY: usize = 4 << 20;

/// A running HTTP frontend.
pub struct HttpFrontend {
    local_addr: SocketAddr,
    task: tokio::task::JoinHandle<()>,
}

impl HttpFrontend {
    /// Bind to `addr` and serve `clipper` in the background.
    pub async fn bind(addr: &str, clipper: Clipper) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let task = tokio::spawn(async move {
            while let Ok((conn, _)) = listener.accept().await {
                let clipper = clipper.clone();
                tokio::spawn(async move {
                    let _ = serve_connection(conn, clipper).await;
                });
            }
        });
        Ok(HttpFrontend { local_addr, task })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for HttpFrontend {
    fn drop(&mut self) {
        self.task.abort();
    }
}

#[derive(Deserialize)]
struct PredictRequest {
    input: Vec<f32>,
    #[serde(default)]
    context: Option<String>,
}

#[derive(Serialize)]
struct PredictResponse {
    output: JsonOutput,
    confidence: f64,
    models_used: usize,
    models_missing: usize,
    latency_us: u64,
}

#[derive(Deserialize)]
struct UpdateRequest {
    input: Vec<f32>,
    #[serde(default)]
    context: Option<String>,
    #[serde(default)]
    label: Option<u32>,
    #[serde(default)]
    labels: Option<Vec<u32>>,
}

#[derive(Serialize)]
struct ModelStatus {
    model: String,
    replicas: Vec<String>,
    queue_depth: usize,
    inflight: usize,
}

/// JSON shape for outputs.
#[derive(Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum JsonOutput {
    Class { label: u32 },
    Scores { scores: Vec<f32> },
    Labels { labels: Vec<u32> },
}

impl From<Output> for JsonOutput {
    fn from(o: Output) -> Self {
        match o {
            Output::Class(label) => JsonOutput::Class { label },
            Output::Scores(scores) => JsonOutput::Scores { scores },
            Output::Labels(labels) => JsonOutput::Labels { labels },
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

async fn read_request(
    reader: &mut BufReader<tokio::net::tcp::OwnedReadHalf>,
) -> std::io::Result<Option<Request>> {
    // Read until the end of headers.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        let n = reader.read(&mut byte).await?;
        if n == 0 {
            return Ok(None); // clean EOF between requests
        }
        head.push(byte[0]);
        if head.len() > 64 * 1024 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head_str = String::from_utf8_lossy(&head);
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();

    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
        if lower.starts_with("connection:") && lower.contains("close") {
            keep_alive = false;
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).await?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

async fn serve_connection(conn: TcpStream, clipper: Clipper) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let (rd, mut wr) = conn.into_split();
    let mut reader = BufReader::new(rd);
    loop {
        let req = match read_request(&mut reader).await {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()),
            Err(e) => {
                let _ =
                    write_response(&mut wr, 400, &format!("{{\"error\":\"{e}\"}}"), false).await;
                return Ok(());
            }
        };
        let keep_alive = req.keep_alive;
        let (status, body) = route(&clipper, req).await;
        write_response(&mut wr, status, &body, keep_alive).await?;
        if !keep_alive {
            return Ok(());
        }
    }
}

async fn route(clipper: &Clipper, req: Request) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/models") => {
            let mal = clipper.abstraction();
            let mut models = mal.models();
            models.sort();
            let statuses: Vec<ModelStatus> = models
                .iter()
                .map(|m| ModelStatus {
                    model: m.to_string(),
                    replicas: mal.replica_queue_ids(m),
                    queue_depth: mal.queue_depth(m),
                    inflight: mal.inflight(m),
                })
                .collect();
            match serde_json::to_string(&statuses) {
                Ok(body) => (200, body),
                Err(e) => (500, format!("{{\"error\":\"{e}\"}}")),
            }
        }
        ("GET", "/metrics") => {
            let snap = clipper.registry().snapshot();
            match serde_json::to_string(&snap) {
                Ok(body) => (200, body),
                Err(e) => (500, format!("{{\"error\":\"{e}\"}}")),
            }
        }
        ("POST", path) if path.starts_with("/apps/") => {
            let rest = &path["/apps/".len()..];
            let Some((app, action)) = rest.split_once('/') else {
                return (404, "{\"error\":\"not found\"}".to_string());
            };
            match action {
                "predict" => handle_predict(clipper, app, &req.body).await,
                "update" => handle_update(clipper, app, &req.body).await,
                _ => (404, "{\"error\":\"not found\"}".to_string()),
            }
        }
        _ => (404, "{\"error\":\"not found\"}".to_string()),
    }
}

async fn handle_predict(clipper: &Clipper, app: &str, body: &[u8]) -> (u16, String) {
    let parsed: PredictRequest = match serde_json::from_slice(body) {
        Ok(p) => p,
        Err(e) => return (400, format!("{{\"error\":\"bad request: {e}\"}}")),
    };
    match clipper
        .predict(app, parsed.context.as_deref(), Arc::new(parsed.input))
        .await
    {
        Ok(p) => {
            let resp = PredictResponse {
                output: p.output.into(),
                confidence: p.confidence,
                models_used: p.models_used,
                models_missing: p.models_missing,
                latency_us: p.latency.as_micros() as u64,
            };
            (200, serde_json::to_string(&resp).unwrap_or_default())
        }
        Err(e) => (500, format!("{{\"error\":\"{e}\"}}")),
    }
}

async fn handle_update(clipper: &Clipper, app: &str, body: &[u8]) -> (u16, String) {
    let parsed: UpdateRequest = match serde_json::from_slice(body) {
        Ok(p) => p,
        Err(e) => return (400, format!("{{\"error\":\"bad request: {e}\"}}")),
    };
    let feedback = match (parsed.label, parsed.labels) {
        (Some(label), None) => Feedback::class(label),
        (None, Some(labels)) => Feedback::labels(labels),
        _ => {
            return (
                400,
                "{\"error\":\"provide exactly one of label / labels\"}".to_string(),
            );
        }
    };
    match clipper
        .feedback(
            app,
            parsed.context.as_deref(),
            Arc::new(parsed.input),
            feedback,
        )
        .await
    {
        Ok(()) => (200, "{\"status\":\"ok\"}".to_string()),
        Err(e) => (500, format!("{{\"error\":\"{e}\"}}")),
    }
}

async fn write_response(
    wr: &mut tokio::net::tcp::OwnedWriteHalf,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let resp = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {conn}\r\n\r\n{body}",
        body.len()
    );
    wr.write_all(resp.as_bytes()).await?;
    wr.flush().await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::BatchConfig;
    use crate::types::{AppConfig, ModelId, PolicyKind};
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;
    use std::time::Duration;

    async fn start_frontend() -> (HttpFrontend, Clipper) {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("m", 1);
        clipper.add_model(m.clone(), BatchConfig::default());
        clipper
            .add_replica(
                &m,
                Arc::new(FnTransport::new(
                    "echo",
                    |inputs: &[clipper_rpc::Input]| {
                        Ok(PredictReply {
                            outputs: inputs
                                .iter()
                                .map(
                                    |x| WireOutput::Class(x.first().copied().unwrap_or(0.0) as u32),
                                )
                                .collect(),
                            queue_us: 0,
                            compute_us: 10,
                        })
                    },
                )),
            )
            .unwrap();
        clipper.register_app(
            AppConfig::new("digits", vec![m])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(100)),
        );
        let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
            .await
            .unwrap();
        (frontend, clipper)
    }

    async fn http_call(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).await.unwrap();
        conn.write_all(raw.as_bytes()).await.unwrap();
        conn.shutdown().await.unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).await.unwrap();
        buf
    }

    fn post(path: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nhost: x\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
    }

    #[tokio::test]
    async fn health_endpoint_responds() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /health HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"ok\""));
    }

    #[tokio::test]
    async fn predict_over_http() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{\"input\": [7.0, 1.0]}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"label\":7"), "{resp}");
        assert!(resp.contains("\"confidence\":1.0"), "{resp}");
    }

    #[tokio::test]
    async fn update_over_http_records_feedback() {
        let (frontend, clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/update", "{\"input\": [3.0], \"label\": 3}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let state = clipper.policy_state("digits", None).unwrap();
        assert_eq!(state.total, 1);
    }

    #[tokio::test]
    async fn bad_json_is_a_400() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{not json"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[tokio::test]
    async fn unknown_route_is_404() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /nope HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    }

    #[tokio::test]
    async fn models_endpoint_reports_scheduler_state() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /models HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"model\":\"m:v1\""), "{resp}");
        assert!(resp.contains("\"queue_depth\""), "{resp}");
        assert!(resp.contains("m:v1:0"), "{resp}");
    }

    #[tokio::test]
    async fn metrics_endpoint_returns_json() {
        let (frontend, _clipper) = start_frontend().await;
        // Generate some traffic first.
        http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{\"input\": [1.0]}"),
        )
        .await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /metrics HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("clipper/predictions"), "{resp}");
    }

    #[tokio::test]
    async fn keep_alive_serves_multiple_requests() {
        let (frontend, _clipper) = start_frontend().await;
        let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
        for i in 0..3 {
            let body = format!("{{\"input\": [{i}.0]}}");
            let req = format!(
                "POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            conn.write_all(req.as_bytes()).await.unwrap();
            let mut buf = vec![0u8; 4096];
            let n = conn.read(&mut buf).await.unwrap();
            let resp = String::from_utf8_lossy(&buf[..n]);
            assert!(resp.contains(&format!("\"label\":{i}")), "req {i}: {resp}");
        }
    }

    #[tokio::test]
    async fn update_requires_exactly_one_feedback_kind() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/update", "{\"input\": [1.0]}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }
}
