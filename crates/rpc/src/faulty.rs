//! Fault-injection transport wrapper.
//!
//! Wraps any [`BatchTransport`] and injects the failure modes the paper's
//! robustness machinery must tolerate: added latency (stragglers, §5.2.2),
//! dropped requests, and hard failures. Randomness is seeded so experiments
//! are repeatable, in the spirit of smoltcp's `--drop-chance` /
//! `--corrupt-chance` example flags.

use crate::error::RpcError;
use crate::message::PredictReply;
use crate::transport::{BatchTransport, BoxFuture, Input};
use parking_lot::Mutex;
use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Fault model for [`FaultyTransport`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Base added latency applied to every request.
    pub base_delay: Duration,
    /// Uniform jitter added on top of `base_delay` (0..jitter).
    pub jitter: Duration,
    /// Probability of a straggler event per request.
    pub straggler_prob: f64,
    /// Extra delay applied on straggler events.
    pub straggler_delay: Duration,
    /// Probability the request is dropped (never answered → `Injected`).
    pub drop_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            base_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            straggler_prob: 0.0,
            straggler_delay: Duration::ZERO,
            drop_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// A straggler profile: `prob` chance of an extra `delay`.
    pub fn stragglers(prob: f64, delay: Duration) -> Self {
        FaultConfig {
            straggler_prob: prob,
            straggler_delay: delay,
            ..Default::default()
        }
    }

    /// Uniform latency noise in `[base, base + jitter)`.
    pub fn latency(base: Duration, jitter: Duration) -> Self {
        FaultConfig {
            base_delay: base,
            jitter,
            ..Default::default()
        }
    }
}

/// A transport wrapper that injects latency and loss.
pub struct FaultyTransport {
    inner: Arc<dyn BatchTransport>,
    cfg: FaultConfig,
    rng: Mutex<StdRng>,
}

impl FaultyTransport {
    /// Wrap `inner` with fault model `cfg`; `seed` makes runs repeatable.
    pub fn new(inner: Arc<dyn BatchTransport>, cfg: FaultConfig, seed: u64) -> Self {
        FaultyTransport {
            inner,
            cfg,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl BatchTransport for FaultyTransport {
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        // Decide the fault outcome up front (short lock; no awaits inside).
        let (delay, dropped) = {
            let mut rng = self.rng.lock();
            let mut delay = self.cfg.base_delay;
            if self.cfg.jitter > Duration::ZERO {
                delay += self.cfg.jitter.mul_f64(rng.random::<f64>());
            }
            if self.cfg.straggler_prob > 0.0 && rng.random_bool(self.cfg.straggler_prob) {
                delay += self.cfg.straggler_delay;
            }
            let dropped = self.cfg.drop_prob > 0.0 && rng.random_bool(self.cfg.drop_prob);
            (delay, dropped)
        };
        let inner = self.inner.clone();
        let inputs = inputs.to_vec(); // Arc clones only
        Box::pin(async move {
            if delay > Duration::ZERO {
                tokio::time::sleep(delay).await;
            }
            if dropped {
                return Err(RpcError::Injected);
            }
            inner.predict_batch(&inputs).await
        })
    }

    fn id(&self) -> String {
        format!("faulty({})", self.inner.id())
    }

    fn is_healthy(&self) -> bool {
        self.inner.is_healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireOutput;
    use crate::transport::FnTransport;
    use std::sync::Arc;
    use std::time::Instant;

    fn one_input() -> Vec<Input> {
        vec![Arc::new(vec![0.0])]
    }

    fn ok_transport() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("ok", |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(1); inputs.len()],
                queue_us: 0,
                compute_us: 0,
            })
        }))
    }

    #[tokio::test]
    async fn no_faults_passes_through() {
        let t = FaultyTransport::new(ok_transport(), FaultConfig::default(), 1);
        let r = t.predict_batch(&one_input()).await.unwrap();
        assert_eq!(r.outputs.len(), 1);
        assert!(t.id().contains("ok"));
    }

    #[tokio::test]
    async fn drop_prob_one_always_drops() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            ..Default::default()
        };
        let t = FaultyTransport::new(ok_transport(), cfg, 1);
        let err = t.predict_batch(&one_input()).await.unwrap_err();
        assert!(matches!(err, RpcError::Injected));
    }

    #[tokio::test]
    async fn base_delay_is_applied() {
        let cfg = FaultConfig::latency(Duration::from_millis(25), Duration::ZERO);
        let t = FaultyTransport::new(ok_transport(), cfg, 1);
        let start = Instant::now();
        t.predict_batch(&one_input()).await.unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[tokio::test]
    async fn straggler_rate_roughly_matches_probability() {
        let cfg = FaultConfig::stragglers(0.3, Duration::from_millis(8));
        let t = FaultyTransport::new(ok_transport(), cfg, 42);
        let mut stragglers = 0;
        for _ in 0..100 {
            let start = Instant::now();
            t.predict_batch(&one_input()).await.unwrap();
            if start.elapsed() >= Duration::from_millis(8) {
                stragglers += 1;
            }
        }
        assert!(
            (15..=45).contains(&stragglers),
            "expected ≈30 stragglers out of 100, got {stragglers}"
        );
    }
}
