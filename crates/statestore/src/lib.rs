//! In-memory key-value store — the Redis substitute for Clipper's
//! contextualized selection state (§5.3).
//!
//! The paper keeps per-user/session model-selection state "in an external
//! database system. In our current implementation we use Redis." This crate
//! provides the Redis subset Clipper needs, from scratch:
//!
//! - [`store::StateStore`]: a sharded, versioned KV map with lazy TTL
//!   expiry and compare-and-swap (used for read-modify-write of policy
//!   state under concurrent feedback);
//! - [`resp`]: a RESP-style wire protocol (arrays of bulk strings in,
//!   typed replies out) so the store can run as a real network service;
//! - [`server`] / [`client`]: tokio TCP server and async client.
//!
//! Most experiments embed the store in-process via `StateStore` directly;
//! the `rest_service` example runs it as a separate listener to mirror the
//! paper's deployment shape.

pub mod client;
pub mod resp;
pub mod server;
pub mod store;

pub use client::StateStoreClient;
pub use resp::{RespValue, MAX_BULK_LEN};
pub use server::StateStoreServer;
pub use store::{CasOutcome, StateStore};
