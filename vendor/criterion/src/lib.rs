//! Minimal API-compatible substitute for [`criterion`].
//!
//! Benchmarks compile and run with the same source (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`) and print mean ns/iter per benchmark. The statistical
//! machinery (outlier analysis, HTML reports, comparisons) is out of
//! scope; this exists so `cargo bench` and the bench targets stay alive
//! without registry access.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            measurement_time,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.measurement_time, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the target measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Cap: this substitute reports a mean, which converges much faster
        // than criterion's bootstrap statistics.
        self.measurement_time = d.min(Duration::from_millis(400));
        self
    }

    /// Accepted for compatibility; sampling is time-driven here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{name}", self.name), self.measurement_time, f);
        self
    }

    /// Finish the group (printing was already done incrementally).
    pub fn finish(self) {}
}

/// How much setup output to batch per timing run in
/// [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// (total elapsed, iterations) accumulated by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up briefly, then time in growing batches.
        let warmup_end = Instant::now() + self.budget / 10;
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        let deadline = start + self.budget;
        let mut batch = 1u64;
        while Instant::now() < deadline {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.result = Some((start.elapsed(), iters.max(1)));
    }

    /// Time `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warmup_end = Instant::now() + self.budget / 10;
        while Instant::now() < warmup_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut iters: u64 = 0;
        let mut measured = Duration::ZERO;
        let wall_deadline = Instant::now() + self.budget;
        while Instant::now() < wall_deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.result = Some((measured, iters.max(1)));
    }
}

fn run_bench(name: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("  {name:<40} {ns_per_iter:>12.1} ns/iter ({iters} iters)");
        }
        None => println!("  {name:<40} (no measurement)"),
    }
}

/// Re-export for code written against `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
