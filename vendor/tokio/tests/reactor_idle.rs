//! Reactor resource accounting and no-busy-spin regressions.
//!
//! A single serial test in its own binary (own process, own global
//! runtime): the asserts below are exact counts on process-global state
//! (timer registrations, fd registrations) that parallel tests would
//! pollute.

#![cfg(vendored_reactor)]

use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

#[tokio::test]
async fn reactor_accounting_and_no_busy_spin() {
    assert!(tokio::reactor::active(), "reactor must be active");

    // --- fd deregistration on drop: no stale slab entries -------------
    let baseline_fds = tokio::reactor::registered_fds();
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let mut pairs = Vec::new();
    for _ in 0..16 {
        let client = TcpStream::connect(addr).await.unwrap();
        let (server, _) = listener.accept().await.unwrap();
        pairs.push((client, server));
    }
    // 1 listener + 32 stream endpoints.
    assert_eq!(tokio::reactor::registered_fds(), baseline_fds + 33);

    // Split halves share one registration per fd.
    let (client, server) = pairs.pop().unwrap();
    let (crd, cwr) = client.into_split();
    assert_eq!(tokio::reactor::registered_fds(), baseline_fds + 33);
    drop(crd);
    // One half still alive: the registration must survive.
    assert_eq!(tokio::reactor::registered_fds(), baseline_fds + 33);
    drop(cwr);
    drop(server);
    assert_eq!(tokio::reactor::registered_fds(), baseline_fds + 31);

    drop(pairs);
    assert_eq!(tokio::reactor::registered_fds(), baseline_fds + 1);

    drop(listener);
    assert_eq!(tokio::reactor::registered_fds(), baseline_fds);

    // --- no-busy-spin: a blocked accept must burn no timer slots -------
    let idle_listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let blocked_accept = tokio::spawn(async move {
        let _ = idle_listener.accept().await;
    });
    // Let the accept reach its park.
    tokio::time::sleep(Duration::from_millis(20)).await;

    let timer_regs_before = tokio::time::timer_registration_count();
    let io_events_before = tokio::reactor::io_event_count();
    // Quiet window measured with *std* sleep so we register no timers
    // ourselves.
    std::thread::sleep(Duration::from_millis(300));
    let timer_regs = tokio::time::timer_registration_count() - timer_regs_before;
    let io_events = tokio::reactor::io_event_count() - io_events_before;
    assert_eq!(
        timer_regs, 0,
        "a blocked accept must not register timer retries (backoff emulation leaked in)"
    );
    assert_eq!(io_events, 0, "an idle runtime must see no readiness events");
    blocked_accept.abort();

    // --- wake-on-readiness without timer help --------------------------
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        std::thread::sleep(Duration::from_millis(40));
        conn.write_all(b"wake").await.unwrap();
        let mut byte = [0u8; 1];
        let _ = conn.read(&mut byte).await;
    });
    let mut client = TcpStream::connect(addr).await.unwrap();
    let timer_regs_before = tokio::time::timer_registration_count();
    let mut buf = [0u8; 4];
    client.read_exact(&mut buf).await.unwrap();
    assert_eq!(&buf, b"wake");
    assert_eq!(
        tokio::time::timer_registration_count() - timer_regs_before,
        0,
        "the blocked read must be woken by the kernel, not a timer"
    );
    client.write_all(b"x").await.unwrap();
    server.await.unwrap();

    // --- cross-thread eventfd wakeup -----------------------------------
    // With no timers armed the driver parks in epoll_pwait2
    // indefinitely; registering a timer from another thread must
    // interrupt the park through the eventfd and fire on time.
    let wakeups_before = tokio::reactor::wakeup_count();
    let (done_tx, done_rx) = tokio::sync::oneshot::channel::<Duration>();
    std::thread::spawn(move || {
        tokio::runtime::block_on(async move {
            let t0 = Instant::now();
            tokio::time::sleep(Duration::from_millis(30)).await;
            let _ = done_tx.send(t0.elapsed());
        });
    });
    let slept = tokio::time::timeout(Duration::from_secs(10), done_rx)
        .await
        .expect("cross-thread timer never fired: eventfd wakeup lost")
        .unwrap();
    assert!(slept >= Duration::from_millis(29), "timer fired early");
    assert!(
        slept < Duration::from_secs(5),
        "timer fired far too late: {slept:?}"
    );
    assert!(
        tokio::reactor::wakeup_count() > wakeups_before,
        "the new deadline must have interrupted the parked driver via eventfd"
    );
}
