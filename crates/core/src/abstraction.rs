//! The model abstraction layer (§4): cache over adaptive batching over
//! replicated container transports.
//!
//! `predict(model, x)` resolves through three stages:
//!
//! 1. **prediction cache** — hit returns immediately; a miss either joins
//!    an in-flight computation or claims responsibility for one;
//! 2. **replica scheduling** — a per-model [scheduler](SchedulerPolicy)
//!    routes the query by *live replica state*: the default is
//!    power-of-two-choices over each queue's backlog estimate (queued
//!    plus in-flight queries, weighted by an EWMA of the replica's
//!    observed service rate), so a slow or backlogged replica receives
//!    less traffic than a fast one (each replica still tunes its own
//!    batching independently, §4.4.1). If the chosen queue refuses — full
//!    or draining — the query falls through to *any* replica with room;
//!    it is shed only when every replica is full. Blind round-robin
//!    remains available as a baseline policy.
//! 3. **batching queue** — the replica's pull-based worker forms batches
//!    and ships them zero-copy over the transport.
//!
//! Replicas can be attached and removed while traffic flows: removal
//! drains the replica's queue gracefully (every accepted query completes
//! or fail-fills; see [`crate::batching::QueueState`]), and the scheduler
//! stops routing to it the moment the drain begins.
//!
//! The layer also tracks each model's *running default output* — the
//! substitution value used when straggler mitigation renders a prediction
//! without that model (§5.2.2) — and exposes per-model `queue_depth` /
//! `inflight` gauges plus a scheduler-level `shed` counter in the metrics
//! registry.

pub use crate::batching::queue::PredictError;
use crate::batching::queue::{
    spawn_replica_queue_with_hooks, QueueConfig, QueueHooks, QueueItem, QueueMetrics, ReplicaQueue,
    ReplySink,
};
use crate::batching::LatencyPrior;
use crate::cache::{CacheKey, CacheStats, Lookup, PredictionCache};
use crate::types::{Input, ModelId, Output};
use clipper_metrics::{Counter, Registry};
use clipper_rpc::transport::BatchTransport;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;
use tokio::sync::oneshot;

/// Per-model batching configuration (applied to each replica's queue).
pub type BatchConfig = QueueConfig;

/// How a model's scheduler picks a replica for each query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Depth-aware power-of-two-choices (the default): sample two distinct
    /// replicas, route to the one with the smaller backlog estimate
    /// (`(queued + inflight) × service-rate EWMA`), falling through to any
    /// replica with room before shedding.
    #[default]
    PowerOfTwoChoices,
    /// Blind round-robin over healthy replicas (the pre-scheduler
    /// behavior, kept as the comparison baseline): sheds on a full queue
    /// even when a sibling replica is idle.
    RoundRobin,
}

/// Running summary of a model's outputs, used to substitute for missing
/// predictions under straggler mitigation. For class outputs the default
/// is the modal label; for score outputs the running mean vector.
#[derive(Default)]
struct DefaultTracker {
    label_counts: HashMap<u32, u64>,
    score_sums: Vec<f64>,
    score_count: u64,
}

impl DefaultTracker {
    fn record(&mut self, out: &Output) {
        match out {
            Output::Class(c) => {
                *self.label_counts.entry(*c).or_insert(0) += 1;
            }
            Output::Scores(s) => {
                if self.score_sums.len() != s.len() {
                    self.score_sums = vec![0.0; s.len()];
                    self.score_count = 0;
                }
                for (acc, &v) in self.score_sums.iter_mut().zip(s.iter()) {
                    *acc += v as f64;
                }
                self.score_count += 1;
                *self.label_counts.entry(out.label()).or_insert(0) += 1;
            }
            Output::Labels(_) => {
                // Sequences have no meaningful average; straggler handling
                // drops missing transcriptions instead.
            }
        }
    }

    fn default_output(&self) -> Option<Output> {
        if self.score_count > 0 {
            let mean: Vec<f32> = self
                .score_sums
                .iter()
                .map(|&s| (s / self.score_count as f64) as f32)
                .collect();
            return Some(Output::Scores(mean));
        }
        self.label_counts
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&label, _)| Output::Class(label))
    }
}

struct Replica {
    queue: Arc<ReplicaQueue>,
    transport: Arc<dyn BatchTransport>,
}

impl Replica {
    fn is_routable(&self) -> bool {
        self.transport.is_healthy() && self.queue.is_accepting()
    }
}

struct ModelHandle {
    id: ModelId,
    cfg: QueueConfig,
    policy: SchedulerPolicy,
    replicas: RwLock<Vec<Arc<Replica>>>,
    /// Round-robin cursor and p2c sampling token.
    cursor: AtomicUsize,
    /// Monotonic replica index so hot re-adds get fresh queue ids.
    next_replica_idx: AtomicUsize,
    /// Queries shed by the scheduler (no replica had room).
    shed: Counter,
    /// Queries shed up front by SLO-aware admission (§4.4.1): the latency
    /// models said no replica could meet the SLO at current depth.
    admission_shed: Counter,
    /// Learned per-replica latency priors restored from persisted
    /// `BatchKnobs` records, keyed by queue id; consumed when the matching
    /// replica re-attaches so a rehydrated fleet starts tuned.
    restore_tunes: Mutex<HashMap<String, LatencyPrior>>,
    defaults: Mutex<DefaultTracker>,
}

/// Fill `buf` with indices of routable replicas (excluding suspects when
/// `clean_only`), stopping at the buffer's capacity. Returns the count.
fn fill_candidates(buf: &mut [usize; 16], replicas: &[Arc<Replica>], clean_only: bool) -> usize {
    let mut m = 0;
    for (i, r) in replicas.iter().enumerate() {
        if m == buf.len() {
            break;
        }
        if r.is_routable() && (!clean_only || !r.queue.is_suspect()) {
            buf[m] = i;
            m += 1;
        }
    }
    m
}

/// splitmix64 — cheap well-mixed bits for the two p2c samples.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ModelHandle {
    /// Pick the index (into `replicas`) to try first.
    fn pick(&self, replicas: &[Arc<Replica>]) -> usize {
        let n = replicas.len();
        debug_assert!(n > 0);
        let token = self.cursor.fetch_add(1, Ordering::Relaxed) as u64;
        match self.policy {
            SchedulerPolicy::RoundRobin => token as usize % n,
            SchedulerPolicy::PowerOfTwoChoices => {
                // Routable candidates, preferring replicas whose recent
                // batches succeeded: a black-hole replica fails instantly,
                // keeps an empty queue, and would otherwise look ideal to
                // depth-aware scoring. Fall back to all routable replicas
                // when everything is suspect, and to raw indices when
                // everything looks dead so the fall-through loop still
                // reports the right error. Candidate indices live in a
                // stack buffer — no per-query allocation for realistic
                // replica counts (the buffer caps sampling at its size,
                // which still yields a valid p2c pick in larger pools).
                let mut buf = [0usize; 16];
                let mut m = fill_candidates(&mut buf, replicas, true);
                if m == 0 {
                    m = fill_candidates(&mut buf, replicas, false);
                }
                let routable = &buf[..m];
                match m {
                    0 => token as usize % n,
                    1 => routable[0],
                    m => {
                        let h = mix64(token);
                        let a = (h % m as u64) as usize;
                        // Distinct second sample from the high bits.
                        let b = (a + 1 + ((h >> 32) % (m as u64 - 1)) as usize) % m;
                        let (qa, qb) = (&replicas[routable[a]].queue, &replicas[routable[b]].queue);
                        // Score with the learned per-replica latency curve
                        // (§4.4.1, `α + β·b̂` over the work already ahead)
                        // once both candidates' models are established — it
                        // separates a replica that is merely busy from one
                        // that is intrinsically slow. Fall back to backlog
                        // (occupancy × service EWMA) when both have observed
                        // rates, and to raw occupancy otherwise, so an
                        // unobserved replica can't win on an artificially
                        // zero estimate.
                        let curve = |q: &crate::batching::ReplicaQueue| {
                            q.latency_model().predict_ns(q.occupancy() + 1)
                        };
                        let a_wins = match (curve(qa), curve(qb)) {
                            (Some(ca), Some(cb)) => ca <= cb,
                            _ if qa.has_service_estimate() && qb.has_service_estimate() => {
                                qa.backlog_estimate_ns() <= qb.backlog_estimate_ns()
                            }
                            _ => qa.occupancy() <= qb.occupancy(),
                        };
                        if a_wins {
                            routable[a]
                        } else {
                            routable[b]
                        }
                    }
                }
            }
        }
    }

    /// SLO-aware admission (§4.4.1): whether at least one routable
    /// replica's latency model + backlog estimate says a query admitted
    /// now can still meet the model's SLO. A replica without an
    /// established model admits by default (cold start must not shed on
    /// a guess), and so does a model with no routable replicas at all —
    /// the dispatch loop then reports `NoReplicas`, not a shed.
    fn can_admit(&self, replicas: &[Arc<Replica>]) -> bool {
        let slo_ns = self.cfg.slo.as_nanos().min(u64::MAX as u128) as u64;
        let mut any_routable = false;
        for r in replicas.iter() {
            if !r.is_routable() {
                continue;
            }
            // A breaker that is open and cooling down can't serve the
            // query at all; its (likely idle) queue must not vouch for
            // admission.
            if r.queue.breaker().is_tripped() {
                continue;
            }
            any_routable = true;
            match r.queue.estimated_admission_ns() {
                Some(est) if est > slo_ns => {}
                _ => return true,
            }
        }
        !any_routable
    }

    /// Route one query. Consumes the sink: on any failure the sink is
    /// completed with the returned error, so cache waiters always settle.
    fn dispatch(&self, input: Input, sink: ReplySink) -> Result<(), PredictError> {
        let replicas = self.replicas.read();
        if replicas.is_empty() {
            sink.complete(Err(PredictError::NoReplicas));
            return Err(PredictError::NoReplicas);
        }
        // Admission before routing: an honest 429 now beats a guaranteed
        // late answer. Opt-in per model (`QueueConfig::slo_admission`).
        if self.cfg.slo_admission && !self.can_admit(&replicas) {
            self.shed.inc();
            self.admission_shed.inc();
            sink.complete(Err(PredictError::Overloaded));
            return Err(PredictError::Overloaded);
        }
        // The deadline is the retry budget: a retryable upstream failure
        // may redispatch this query onto a sibling replica only while the
        // original SLO window is still open.
        let mut item = QueueItem::with_deadline(input, sink, Instant::now() + self.cfg.slo);
        let n = replicas.len();
        let start = self.pick(&replicas);
        // With SLO-aware admission on, a replica whose latency model +
        // backlog says a query admitted now would finish past the SLO is
        // skipped exactly like a full queue — admission and routing stay
        // coherent: "some replica can meet the deadline" means the query
        // goes to one that can.
        let slo_ns = self.cfg.slo.as_nanos().min(u64::MAX as u128) as u64;
        let over_slo = |r: &Replica| {
            self.cfg.slo_admission
                && matches!(r.queue.estimated_admission_ns(), Some(est) if est > slo_ns)
        };
        match self.policy {
            SchedulerPolicy::RoundRobin => {
                // Baseline semantics: first healthy replica from the
                // cursor gets the query; a full queue sheds it.
                let mut skipped_over_slo = false;
                for offset in 0..n {
                    let r = &replicas[(start + offset) % n];
                    if !r.transport.is_healthy() {
                        continue;
                    }
                    if over_slo(r) {
                        skipped_over_slo = true;
                        continue;
                    }
                    r.queue.submit(item);
                    return Ok(());
                }
                let err = if skipped_over_slo {
                    self.shed.inc();
                    self.admission_shed.inc();
                    PredictError::Overloaded
                } else {
                    PredictError::NoReplicas
                };
                let QueueItem { sink, .. } = item;
                sink.complete(Err(err.clone()));
                Err(err)
            }
            SchedulerPolicy::PowerOfTwoChoices => {
                // Recovery probe: a suspect replica whose breaker asks
                // for a probe is deliberately handed this query — the
                // breaker admits it as the single probe batch, success
                // clears the error streak and rejoins the replica to the
                // clean tier, failure re-opens the breaker while the
                // deadline budget redispatches the query onto a sibling.
                // Without this, a pull-based queue the scheduler routes
                // around would never see traffic again and could never
                // prove it recovered.
                for offset in 0..n {
                    let r = &replicas[(start + offset) % n];
                    if r.transport.is_healthy()
                        && r.queue.is_suspect()
                        && r.queue.breaker().wants_probe()
                        && !over_slo(r)
                    {
                        match r.queue.try_submit(item) {
                            Ok(()) => return Ok(()),
                            Err(back) => item = back,
                        }
                    }
                }
                let mut saw_healthy = false;
                // Two fall-through tiers: clean replicas first, suspect
                // ones only when no clean replica had room — a suspect
                // replica must never intercept a query a healthy sibling
                // could serve.
                for suspects in [false, true] {
                    for offset in 0..n {
                        let r = &replicas[(start + offset) % n];
                        if !r.transport.is_healthy() || r.queue.is_suspect() != suspects {
                            continue;
                        }
                        saw_healthy = true;
                        if over_slo(r) {
                            continue;
                        }
                        // `try_submit` hands the item back on refusal (full
                        // or draining) so it can fall through to a sibling.
                        match r.queue.try_submit(item) {
                            Ok(()) => return Ok(()),
                            Err(back) => item = back,
                        }
                    }
                }
                let err = if saw_healthy {
                    self.shed.inc();
                    PredictError::Overloaded
                } else {
                    PredictError::NoReplicas
                };
                let QueueItem { sink, .. } = item;
                sink.complete(Err(err.clone()));
                Err(err)
            }
        }
    }

    /// Redispatch a retry-budgeted item that failed on `origin` onto a
    /// *different* routable, non-suspect replica. Draining queues refuse
    /// via `try_submit`, open breakers and error streaks are excluded as
    /// suspects, and a single-replica fleet has nowhere to go —
    /// `Err(item)` hands the item back for a typed fail-fill.
    fn redispatch(&self, origin: &str, mut item: QueueItem) -> Result<(), QueueItem> {
        let replicas = self.replicas.read();
        let n = replicas.len();
        if n <= 1 {
            return Err(item);
        }
        let start = self.pick(&replicas);
        for offset in 0..n {
            let r = &replicas[(start + offset) % n];
            if r.queue.id() == origin || !r.is_routable() || r.queue.is_suspect() {
                continue;
            }
            match r.queue.try_submit(item) {
                Ok(()) => return Ok(()),
                Err(back) => item = back,
            }
        }
        Err(item)
    }

    /// A healthy sibling's transport for a hedged dispatch (never the
    /// straggling `origin` replica itself), or `None` when no clean
    /// sibling exists.
    fn hedge_pick(&self, origin: &str) -> Option<Arc<dyn BatchTransport>> {
        let replicas = self.replicas.read();
        let n = replicas.len();
        if n <= 1 {
            return None;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        for offset in 0..n {
            let r = &replicas[(start + offset) % n];
            if r.queue.id() != origin && r.is_routable() && !r.queue.is_suspect() {
                return Some(r.transport.clone());
            }
        }
        None
    }

    fn queue_depth(&self) -> usize {
        self.replicas.read().iter().map(|r| r.queue.len()).sum()
    }

    fn inflight(&self) -> usize {
        self.replicas
            .read()
            .iter()
            .map(|r| r.queue.inflight())
            .sum()
    }
}

/// What [`ModelAbstractionLayer::remove_model`] hands back: everything
/// needed to await the drain and to revive the version later.
pub struct RemovedModel {
    /// The model's batching configuration.
    pub cfg: BatchConfig,
    /// The model's replica-scheduling policy.
    pub policy: SchedulerPolicy,
    /// The draining replica queues (await `drained()` on each).
    pub queues: Vec<Arc<ReplicaQueue>>,
    /// The replica transports, still connected — re-attachable on revive.
    pub transports: Vec<Arc<dyn BatchTransport>>,
}

/// The model abstraction layer.
pub struct ModelAbstractionLayer {
    cache: PredictionCache,
    models: RwLock<HashMap<ModelId, Arc<ModelHandle>>>,
    registry: Registry,
}

impl ModelAbstractionLayer {
    /// Create a layer with a prediction cache of `cache_capacity` entries.
    ///
    /// Cache counters are registered as *polled* metrics: the registry
    /// reads the cache's relaxed per-shard atomics at snapshot time, so
    /// serving never pays for metric bookkeeping beyond the shard-local
    /// increments.
    pub fn new(cache_capacity: usize, registry: Registry) -> Arc<Self> {
        let cache = PredictionCache::new(cache_capacity);
        fn poll(
            registry: &Registry,
            name: &str,
            cache: &PredictionCache,
            read: fn(CacheStats) -> u64,
        ) {
            let cache = cache.clone();
            registry.poll_counter(name, move || read(cache.stats()));
        }
        poll(&registry, "cache/hits", &cache, |s| s.hits);
        poll(&registry, "cache/misses", &cache, |s| s.misses);
        poll(&registry, "cache/evictions", &cache, |s| s.evictions);
        poll(&registry, "cache/pending_joins", &cache, |s| {
            s.pending_joins
        });
        Arc::new(ModelAbstractionLayer {
            cache,
            models: RwLock::new(HashMap::new()),
            registry,
        })
    }

    /// Register a model with its batching configuration and the default
    /// scheduler policy (power-of-two-choices). Idempotent: a second
    /// registration with the same id keeps the original (and returns
    /// `false`).
    pub fn add_model(&self, id: ModelId, cfg: BatchConfig) -> bool {
        self.add_model_with_policy(id, cfg, SchedulerPolicy::default())
    }

    /// Register a model with an explicit scheduler policy. Returns
    /// whether the id was newly registered — the check and the insert
    /// happen under one write lock, so exactly one of two concurrent
    /// registrations observes `true` (the control plane's create-only
    /// 409 relies on this).
    ///
    /// Also registers per-model poll gauges `model/<id>/queue_depth` and
    /// `model/<id>/inflight` (live replica-state sums) and the scheduler's
    /// `model/<id>/shed` counter.
    pub fn add_model_with_policy(
        &self,
        id: ModelId,
        cfg: BatchConfig,
        policy: SchedulerPolicy,
    ) -> bool {
        let mut models = self.models.write();
        if models.contains_key(&id) {
            return false;
        }
        let registry = &self.registry;
        let handle = Arc::new(ModelHandle {
            id: id.clone(),
            cfg,
            policy,
            replicas: RwLock::new(Vec::new()),
            cursor: AtomicUsize::new(0),
            next_replica_idx: AtomicUsize::new(0),
            shed: registry.counter(&format!("model/{id}/shed")),
            admission_shed: registry.counter(&format!("model/{id}/admission_shed")),
            restore_tunes: Mutex::new(HashMap::new()),
            defaults: Mutex::new(DefaultTracker::default()),
        });
        let weak: Weak<ModelHandle> = Arc::downgrade(&handle);
        registry.poll_gauge(&format!("model/{id}/queue_depth"), {
            let weak = weak.clone();
            move || weak.upgrade().map_or(0, |h| h.queue_depth() as i64)
        });
        registry.poll_gauge(&format!("model/{id}/inflight"), move || {
            weak.upgrade().map_or(0, |h| h.inflight() as i64)
        });
        models.insert(id, handle);
        true
    }

    /// The batching configuration a model was registered with.
    pub fn model_config(&self, id: &ModelId) -> Option<BatchConfig> {
        self.models.read().get(id).map(|h| h.cfg.clone())
    }

    /// Attach a container replica to a registered model — safe while
    /// traffic flows; the scheduler starts routing to it immediately.
    /// Returns the replica's queue id.
    pub fn add_replica(
        &self,
        id: &ModelId,
        transport: Arc<dyn BatchTransport>,
    ) -> Result<String, PredictError> {
        self.add_replica_with_prior(id, transport, None)
    }

    /// [`add_replica`](Self::add_replica) with an explicit latency prior:
    /// a re-registering fleet replica is re-admitted with the curve
    /// harvested when it expired, regardless of the queue id it lands on
    /// this time (queue ids are monotonic, so the id-keyed restore map
    /// can't warm-start a *returning* container on its own).
    pub fn add_replica_with_prior(
        &self,
        id: &ModelId,
        transport: Arc<dyn BatchTransport>,
        prior: Option<LatencyPrior>,
    ) -> Result<String, PredictError> {
        let handle = self
            .models
            .read()
            .get(id)
            .cloned()
            .ok_or(PredictError::ModelUnknown)?;
        let idx = handle.next_replica_idx.fetch_add(1, Ordering::Relaxed);
        let queue_id = format!("{}:{}", handle.id, idx);
        let metrics = QueueMetrics::register(&self.registry, &format!("queue/{queue_id}"));
        let mut cfg = handle.cfg.clone();
        // A previously-learned curve for this queue id (restored from a
        // persisted record) overrides the model-wide prior, so a
        // rehydrated fleet serves with its tuned per-replica ceilings
        // instead of re-probing from the defaults. An explicit caller
        // prior (fleet warm re-admission) wins over both.
        if let Some(prior) = prior.or_else(|| handle.restore_tunes.lock().remove(&queue_id)) {
            cfg.latency_prior = Some(prior);
        }
        // Recovery hooks close the loop from a replica's queue back to the
        // scheduler: retryable batch failures redispatch onto a *different*
        // routable replica, and hedged dispatch borrows a sibling's
        // transport. Weak handles so an unregistered model can drop.
        let hooks = QueueHooks {
            redispatch: Some(Arc::new({
                let weak = Arc::downgrade(&handle);
                let origin = queue_id.clone();
                move |item| match weak.upgrade() {
                    Some(h) => h.redispatch(&origin, item),
                    None => Err(item),
                }
            })),
            hedge_pick: Some(Arc::new({
                let weak = Arc::downgrade(&handle);
                let origin = queue_id.clone();
                move || weak.upgrade().and_then(|h| h.hedge_pick(&origin))
            })),
        };
        let queue = spawn_replica_queue_with_hooks(
            queue_id.clone(),
            transport.clone(),
            cfg,
            metrics,
            hooks,
        );
        // Per-replica depth gauge plus live breaker telemetry for
        // operators (Weak: an unregistered replica must not be kept
        // alive by the registry; `remove_replica`'s prefix unregister
        // reclaims all of these together).
        let weak_q: Weak<ReplicaQueue> = Arc::downgrade(&queue);
        self.registry
            .poll_gauge(&format!("queue/{queue_id}/depth"), {
                let weak_q = weak_q.clone();
                move || weak_q.upgrade().map_or(0, |q| q.len() as i64)
            });
        self.registry
            .poll_gauge(&format!("queue/{queue_id}/breaker_state"), {
                let weak_q = weak_q.clone();
                move || {
                    weak_q
                        .upgrade()
                        .map_or(0, |q| q.breaker().state().code() as i64)
                }
            });
        self.registry
            .poll_counter(&format!("queue/{queue_id}/breaker_opened"), {
                let weak_q = weak_q.clone();
                move || weak_q.upgrade().map_or(0, |q| q.breaker().opened())
            });
        self.registry
            .poll_counter(&format!("queue/{queue_id}/breaker_half_open"), {
                let weak_q = weak_q.clone();
                move || weak_q.upgrade().map_or(0, |q| q.breaker().half_opened())
            });
        self.registry
            .poll_counter(&format!("queue/{queue_id}/breaker_closed"), move || {
                weak_q.upgrade().map_or(0, |q| q.breaker().closed())
            });
        handle
            .replicas
            .write()
            .push(Arc::new(Replica { queue, transport }));
        Ok(queue_id)
    }

    /// Hot-remove one replica by its queue id (as returned by
    /// [`add_replica`](Self::add_replica)). The replica stops receiving
    /// new queries immediately and drains gracefully: every query already
    /// accepted completes (or fail-fills on transport error) — nothing is
    /// dropped and no pending cache entry is left wedged. Returns the
    /// queue handle so callers can `drained().await` for completion.
    pub fn remove_replica(
        &self,
        id: &ModelId,
        queue_id: &str,
    ) -> Result<Arc<ReplicaQueue>, PredictError> {
        let handle = self
            .models
            .read()
            .get(id)
            .cloned()
            .ok_or(PredictError::ModelUnknown)?;
        let mut replicas = handle.replicas.write();
        let pos = replicas
            .iter()
            .position(|r| r.queue.id() == queue_id)
            .ok_or(PredictError::NoReplicas)?;
        let replica = replicas.remove(pos);
        replica.queue.shutdown();
        // Reclaim the replica's per-queue metrics so churn doesn't grow
        // the registry without bound (the trailing '/' keeps "m:v1:1"
        // from matching "m:v1:10"). The draining queue still updates its
        // own handles; they just stop being reported.
        self.registry
            .unregister_prefix(&format!("queue/{queue_id}/"));
        Ok(replica.queue.clone())
    }

    /// Remove all replicas of a model (failure injection / decommission).
    /// Each replica drains gracefully, as in
    /// [`remove_replica`](Self::remove_replica).
    pub fn remove_replicas(&self, id: &ModelId) {
        if let Some(handle) = self.models.read().get(id) {
            let mut replicas = handle.replicas.write();
            for r in replicas.drain(..) {
                r.queue.shutdown();
            }
        }
    }

    /// Unregister a model entirely — the control-plane primitive behind
    /// version rollout. The model stops being dispatchable immediately
    /// (new predicts see `ModelUnknown`); every replica queue begins a
    /// graceful drain. The returned [`RemovedModel`] carries the queues
    /// (await `drained()` on each to observe completion), the transports
    /// (so the version can be *revived* later — rollback re-attaches
    /// them), and the model's batch/scheduler configuration. Per-model
    /// and per-queue metrics are unregistered so churn doesn't grow the
    /// registry without bound.
    pub fn remove_model(&self, id: &ModelId) -> Result<RemovedModel, PredictError> {
        let handle = self
            .models
            .write()
            .remove(id)
            .ok_or(PredictError::ModelUnknown)?;
        self.registry.unregister_prefix(&format!("model/{id}/"));
        let mut replicas = handle.replicas.write();
        let mut queues = Vec::with_capacity(replicas.len());
        let mut transports = Vec::with_capacity(replicas.len());
        for r in replicas.drain(..) {
            r.queue.shutdown();
            self.registry
                .unregister_prefix(&format!("queue/{}/", r.queue.id()));
            queues.push(r.queue.clone());
            transports.push(r.transport.clone());
        }
        drop(replicas);
        Ok(RemovedModel {
            cfg: handle.cfg.clone(),
            policy: handle.policy,
            queues,
            transports,
        })
    }

    /// Whether a model id is registered.
    pub fn has_model(&self, id: &ModelId) -> bool {
        self.models.read().contains_key(id)
    }

    /// Registered model ids.
    pub fn models(&self) -> Vec<ModelId> {
        self.models.read().keys().cloned().collect()
    }

    /// Number of live replicas for a model.
    pub fn replica_count(&self, id: &ModelId) -> usize {
        self.models
            .read()
            .get(id)
            .map_or(0, |h| h.replicas.read().len())
    }

    /// The queue ids of a model's live replicas.
    pub fn replica_queue_ids(&self, id: &ModelId) -> Vec<String> {
        self.models.read().get(id).map_or_else(Vec::new, |h| {
            h.replicas
                .read()
                .iter()
                .map(|r| r.queue.id().to_string())
                .collect()
        })
    }

    /// Snapshot of each live replica's learned tuning (§4.4.1): latency
    /// curve, derived batch ceiling, and sample count. Replicas whose
    /// model is not yet established are skipped — there is nothing worth
    /// persisting for them.
    pub fn replica_tunes(&self, id: &ModelId) -> Vec<crate::batching::ReplicaTune> {
        self.models.read().get(id).map_or_else(Vec::new, |h| {
            h.replicas
                .read()
                .iter()
                .filter(|r| r.queue.latency_model().is_established())
                .map(|r| {
                    let m = r.queue.latency_model();
                    crate::batching::ReplicaTune {
                        queue_id: r.queue.id().to_string(),
                        prior: LatencyPrior {
                            alpha_us: m.alpha_us(),
                            beta_us: m.beta_us(),
                        },
                        b_max: r.queue.current_max_batch(),
                        samples: m.sample_count(),
                    }
                })
                .collect()
        })
    }

    /// One replica's online latency model, by queue id. Ops/test hook:
    /// feed synthetic observations or inspect the learned curve without
    /// driving real traffic through the queue.
    pub fn replica_latency_model(
        &self,
        id: &ModelId,
        queue_id: &str,
    ) -> Option<Arc<crate::batching::LatencyModel>> {
        self.models.read().get(id).and_then(|h| {
            h.replicas
                .read()
                .iter()
                .find(|r| r.queue.id() == queue_id)
                .map(|r| r.queue.latency_model().clone())
        })
    }

    /// Stash learned per-replica priors (from a persisted record) to be
    /// applied when replicas with matching queue ids attach — see
    /// [`add_replica`](Self::add_replica). Unmatched entries are simply
    /// never consumed; replicas with no entry start from the model-wide
    /// prior (or cold).
    pub fn set_replica_tunes(&self, id: &ModelId, tunes: Vec<crate::batching::ReplicaTune>) {
        if let Some(handle) = self.models.read().get(id) {
            let mut map = handle.restore_tunes.lock();
            for t in tunes {
                map.insert(t.queue_id, t.prior);
            }
        }
    }

    /// Queries shed up front by SLO-aware admission for this model.
    pub fn admission_shed_count(&self, id: &ModelId) -> u64 {
        self.models
            .read()
            .get(id)
            .map_or(0, |h| h.admission_shed.get())
    }

    /// The queue ids of a model's replicas that the scheduler currently
    /// considers suspect (≥3 consecutive failed batches, an externally
    /// set health hint, or an open circuit breaker inside its cooldown)
    /// — the candidates a chaos/ops loop hot-removes via
    /// [`remove_replica`](Self::remove_replica).
    pub fn suspect_queue_ids(&self, id: &ModelId) -> Vec<String> {
        self.models.read().get(id).map_or_else(Vec::new, |h| {
            h.replicas
                .read()
                .iter()
                .filter(|r| r.queue.is_suspect())
                .map(|r| r.queue.id().to_string())
                .collect()
        })
    }

    /// Externally flag (or clear) one replica queue as suspect — the
    /// fleet health monitor's bridge into p2c suspect-avoidance for
    /// replicas whose heartbeats went silent before their batches began
    /// failing. Returns whether the queue id was found.
    pub fn set_replica_suspect_hint(&self, id: &ModelId, queue_id: &str, suspect: bool) -> bool {
        self.models.read().get(id).is_some_and(|h| {
            h.replicas
                .read()
                .iter()
                .find(|r| r.queue.id() == queue_id)
                .map(|r| r.queue.set_suspect_hint(suspect))
                .is_some()
        })
    }

    /// Total estimated backlog across a model's replicas, in nanoseconds
    /// of queued work (`Σ occupancy × service EWMA`) — the autoscaler's
    /// primary load signal.
    pub fn backlog_ns(&self, id: &ModelId) -> u64 {
        self.models.read().get(id).map_or(0, |h| {
            h.replicas
                .read()
                .iter()
                .map(|r| r.queue.backlog_estimate_ns())
                .sum()
        })
    }

    /// Total queued queries across a model's replicas (live gauge).
    pub fn queue_depth(&self, id: &ModelId) -> usize {
        self.models.read().get(id).map_or(0, |h| h.queue_depth())
    }

    /// Total in-flight (dispatched, unanswered) queries across a model's
    /// replicas (live gauge).
    pub fn inflight(&self, id: &ModelId) -> usize {
        self.models.read().get(id).map_or(0, |h| h.inflight())
    }

    /// The shared prediction cache.
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// The metrics registry this layer reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The model's substitution output for straggler mitigation (§5.2.2),
    /// if the model has produced any outputs yet.
    pub fn default_output(&self, id: &ModelId) -> Option<Output> {
        self.models
            .read()
            .get(id)
            .and_then(|h| h.defaults.lock().default_output())
    }

    /// Evaluate `Predict(model, input)`, using the cache when `use_cache`.
    ///
    /// The cache key is computed exactly once, at the top, and threaded by
    /// value through the lookup, the queue's reply sink, and the failure
    /// path — the input is never hashed a second time. A cache hit
    /// touches only its shard: the model table is consulted lazily, after
    /// the lookup, so hits never contend on the shared `models` lock.
    pub async fn predict(
        &self,
        model: &ModelId,
        input: Input,
        use_cache: bool,
    ) -> Result<Output, PredictError> {
        let result = if use_cache {
            let key = CacheKey::new(model, &input);
            match self.cache.lookup_or_pending(key) {
                Lookup::Hit(out) => return Ok(out),
                Lookup::Pending(rx) => await_fill(rx).await,
                Lookup::MustCompute(rx) => {
                    // `dispatch` consumes the sink: on any routing failure
                    // it fail-fills the pending entry, so waiters (and the
                    // rx we hold) always settle.
                    let sink = ReplySink::cache(self.cache.clone(), key);
                    match self.handle(model) {
                        Ok(handle) => handle.dispatch(input, sink)?,
                        Err(e) => {
                            sink.complete(Err(e.clone()));
                            return Err(e);
                        }
                    }
                    await_fill(rx).await
                }
            }
        } else {
            let (tx, rx) = oneshot::channel();
            let handle = self.handle(model)?;
            handle.dispatch(input, ReplySink::direct(tx))?;
            match rx.await {
                Ok(r) => r,
                Err(_) => Err(PredictError::Failed("reply channel dropped".into())),
            }
        };

        if let Ok(ref out) = result {
            // Fresh predictions feed the model's running default (§5.2.2);
            // this is off the hit path, which returned above.
            if let Some(handle) = self.models.read().get(model) {
                handle.defaults.lock().record(out);
            }
        }
        result
    }

    fn handle(&self, model: &ModelId) -> Result<Arc<ModelHandle>, PredictError> {
        self.models
            .read()
            .get(model)
            .cloned()
            .ok_or(PredictError::ModelUnknown)
    }
}

async fn await_fill(
    rx: oneshot::Receiver<Result<Output, crate::cache::CacheFillError>>,
) -> Result<Output, PredictError> {
    match rx.await {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(crate::cache::CacheFillError::Failed(m))) => Err(PredictError::Failed(m)),
        // Typed passthrough: upstream failures keep their kind (and the
        // 503-vs-500 split) instead of collapsing into a string.
        Ok(Err(crate::cache::CacheFillError::Predict(e))) => Err(e),
        Err(_) => Err(PredictError::Failed("cache fill dropped".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn echo() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("echo", |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|x| WireOutput::Class(x[0] as u32))
                    .collect(),
                queue_us: 0,
                compute_us: 1,
            })
        }))
    }

    /// A transport that answers after a per-query async delay — simulates
    /// a replica with a given service rate without burning CPU.
    fn delayed(label: u32, per_item: Duration, counter: Arc<AtomicU64>) -> Arc<dyn BatchTransport> {
        struct Delayed {
            label: u32,
            per_item: Duration,
            counter: Arc<AtomicU64>,
        }
        impl BatchTransport for Delayed {
            fn predict_batch(
                &self,
                inputs: &[Input],
            ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
                let n = inputs.len();
                let (label, d, counter) = (self.label, self.per_item, self.counter.clone());
                Box::pin(async move {
                    let total = d * n as u32;
                    tokio::time::sleep(total).await;
                    counter.fetch_add(n as u64, Ordering::Relaxed);
                    Ok(PredictReply {
                        outputs: vec![WireOutput::Class(label); n],
                        queue_us: 0,
                        compute_us: total.as_micros() as u64,
                    })
                })
            }
            fn id(&self) -> String {
                format!("delayed-{}", self.label)
            }
        }
        Arc::new(Delayed {
            label,
            per_item,
            counter,
        })
    }

    fn layer() -> Arc<ModelAbstractionLayer> {
        ModelAbstractionLayer::new(64, Registry::new())
    }

    #[tokio::test]
    async fn predict_through_cache_and_queue() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        let out = mal.predict(&m, Arc::new(vec![7.0]), true).await.unwrap();
        assert_eq!(out, Output::Class(7));
        // Second call: cache hit (no new evaluation).
        let out2 = mal.predict(&m, Arc::new(vec![7.0]), true).await.unwrap();
        assert_eq!(out2, Output::Class(7));
        assert!(mal.cache().stats().hits >= 1);
    }

    #[tokio::test]
    async fn unknown_model_is_an_error() {
        let mal = layer();
        let err = mal
            .predict(&ModelId::new("ghost", 1), Arc::new(vec![1.0]), true)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::ModelUnknown);
    }

    #[tokio::test]
    async fn model_without_replicas_errors() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
    }

    #[tokio::test]
    async fn cache_pending_failure_wakes_waiters_with_error() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        // No replicas: the MustCompute path must fail-fill the pending
        // entry so the cache doesn't wedge.
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), true)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
        assert_eq!(mal.cache().pending_len(), 0, "no stuck pending entries");
    }

    #[tokio::test]
    async fn round_robin_spreads_across_replicas() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model_with_policy(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                ..Default::default()
            },
            SchedulerPolicy::RoundRobin,
        );
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));
        for counter in [c1.clone(), c2.clone()] {
            let t: Arc<dyn BatchTransport> =
                Arc::new(FnTransport::new("counted", move |inputs: &[Input]| {
                    counter.fetch_add(inputs.len() as u64, Ordering::Relaxed);
                    Ok(PredictReply {
                        outputs: vec![WireOutput::Class(0); inputs.len()],
                        queue_us: 0,
                        compute_us: 0,
                    })
                }));
            mal.add_replica(&m, t).unwrap();
        }
        assert_eq!(mal.replica_count(&m), 2);
        for i in 0..20 {
            // Distinct inputs so the cache doesn't collapse them.
            mal.predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .unwrap();
        }
        let (n1, n2) = (c1.load(Ordering::Relaxed), c2.load(Ordering::Relaxed));
        assert_eq!(n1 + n2, 20);
        assert!(n1 >= 5 && n2 >= 5, "round robin should spread: {n1}/{n2}");
    }

    #[tokio::test]
    async fn p2c_spreads_load_across_equal_replicas() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, delayed(0, Duration::from_micros(100), c1.clone()))
            .unwrap();
        mal.add_replica(&m, delayed(0, Duration::from_micros(100), c2.clone()))
            .unwrap();
        let mut tasks = Vec::new();
        for i in 0..64 {
            let mal = mal.clone();
            let m = m.clone();
            tasks.push(tokio::spawn(async move {
                mal.predict(&m, Arc::new(vec![i as f32]), false).await
            }));
        }
        for t in tasks {
            t.await.unwrap().unwrap();
        }
        let (n1, n2) = (c1.load(Ordering::Relaxed), c2.load(Ordering::Relaxed));
        assert_eq!(n1 + n2, 64);
        assert!(
            n1 >= 8 && n2 >= 8,
            "p2c must use both equal replicas: {n1}/{n2}"
        );
    }

    #[tokio::test]
    async fn p2c_favors_the_fast_replica_under_heterogeneity() {
        // One replica 20× slower per query: depth-aware routing must give
        // the fast replica the dominant share. Round-robin would split
        // 50/50 and back the slow replica up.
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                pipeline_depth: 1,
                ..Default::default()
            },
        );
        let fast = Arc::new(AtomicU64::new(0));
        let slow = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, delayed(0, Duration::from_micros(200), fast.clone()))
            .unwrap();
        mal.add_replica(&m, delayed(0, Duration::from_millis(4), slow.clone()))
            .unwrap();
        // Sustained concurrent load so queue depths actually differ.
        let mut tasks = Vec::new();
        for c in 0..8 {
            let mal = mal.clone();
            let m = m.clone();
            tasks.push(tokio::spawn(async move {
                for q in 0..25u32 {
                    let _ = mal
                        .predict(&m, Arc::new(vec![c as f32, q as f32]), false)
                        .await;
                }
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
        let (nf, ns) = (fast.load(Ordering::Relaxed), slow.load(Ordering::Relaxed));
        assert!(
            nf > ns * 2,
            "fast replica should serve a dominant share: fast {nf} vs slow {ns}"
        );
    }

    #[tokio::test]
    async fn p2c_never_sheds_while_a_sibling_has_room() {
        // Replica A is wedged (200ms/query); replica B drains fast. With
        // as many concurrent queries as one queue holds, the old blind
        // round-robin would shed whenever A's queue filled — the
        // depth-aware scheduler must instead fall through to B and
        // complete everything.
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                queue_capacity: 16,
                pipeline_depth: 1,
                ..Default::default()
            },
        );
        let stuck = Arc::new(AtomicU64::new(0));
        let idle = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, delayed(1, Duration::from_millis(200), stuck.clone()))
            .unwrap();
        mal.add_replica(&m, delayed(2, Duration::from_micros(100), idle.clone()))
            .unwrap();
        // Sustained load (not one unbounded burst): each client issues its
        // next query after the previous settles, so the slow replica's
        // rate gets observed and routing converges onto the fast sibling.
        let mut tasks = Vec::new();
        for c in 0..16 {
            let mal = mal.clone();
            let m = m.clone();
            tasks.push(tokio::spawn(async move {
                let mut ok = 0;
                for q in 0..4u32 {
                    if mal
                        .predict(&m, Arc::new(vec![c as f32, q as f32]), false)
                        .await
                        .is_ok()
                    {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let mut ok = 0;
        for t in tasks {
            ok += t.await.unwrap();
        }
        assert_eq!(ok, 64, "no query may shed while a sibling has room");
        assert!(
            idle.load(Ordering::Relaxed) >= 40,
            "the fast sibling should absorb the load, served {}",
            idle.load(Ordering::Relaxed)
        );
    }

    #[tokio::test]
    async fn p2c_deprioritizes_a_replica_that_only_errors() {
        // The trap: a black-hole replica fails instantly, so its queue is
        // always empty and depth-aware scoring would love it. After a few
        // consecutive failures it must be treated as suspect and avoided.
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        let blackhole_hits = Arc::new(AtomicU64::new(0));
        let bh = blackhole_hits.clone();
        let blackhole: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("blackhole", move |inputs: &[Input]| {
                bh.fetch_add(inputs.len() as u64, Ordering::Relaxed);
                Err(clipper_rpc::RpcError::Remote("black hole".into()))
            }));
        let good = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, blackhole).unwrap();
        mal.add_replica(&m, delayed(1, Duration::from_micros(100), good.clone()))
            .unwrap();
        let mut ok = 0;
        for i in 0..40 {
            if mal
                .predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .is_ok()
            {
                ok += 1;
            }
        }
        // A handful of probes land on the black hole before it turns
        // suspect; everything after routes to the good replica.
        assert!(
            ok >= 30,
            "suspect avoidance should rescue most queries, ok {ok} (blackhole ate {})",
            blackhole_hits.load(Ordering::Relaxed)
        );
    }

    #[tokio::test]
    async fn retryable_failures_redispatch_with_zero_client_visible_errors() {
        // One replica drops every batch with a *retryable* error; its
        // sibling is healthy. Deadline-budgeted redispatch must rescue
        // every query — the client sees zero errors, not "mostly ok".
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                slo: Duration::from_secs(5),
                ..Default::default()
            },
        );
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::Injected)
            }));
        let good = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, flaky).unwrap();
        mal.add_replica(&m, delayed(1, Duration::from_micros(50), good.clone()))
            .unwrap();
        for i in 0..40 {
            let out = mal
                .predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .expect("redispatch must rescue every retryable drop");
            assert_eq!(out, Output::Class(1));
        }
        assert_eq!(good.load(Ordering::Relaxed), 40);
    }

    #[tokio::test]
    async fn breaker_probe_routes_traffic_back_after_heal() {
        // The full recovery story: a replica fails hard enough to trip
        // its breaker and turn suspect, the fleet routes around it, the
        // fault lifts — and the scheduler's probe routing must hand it a
        // query once the cooldown elapses so the breaker can close and
        // the replica rejoins the clean tier. Without the probe, a
        // pull-based queue nobody routes to stays suspect forever.
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                slo: Duration::from_secs(1),
                breaker: crate::batching::BreakerConfig {
                    cooldown: Duration::from_millis(20),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let failing = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let healed_serves = Arc::new(AtomicU64::new(0));
        let flaky: Arc<dyn BatchTransport> = {
            let failing = failing.clone();
            let serves = healed_serves.clone();
            Arc::new(FnTransport::new("flaky", move |inputs: &[Input]| {
                if failing.load(Ordering::Relaxed) {
                    Err(clipper_rpc::RpcError::Injected)
                } else {
                    serves.fetch_add(inputs.len() as u64, Ordering::Relaxed);
                    Ok(PredictReply {
                        outputs: vec![WireOutput::Class(9); inputs.len()],
                        queue_us: 0,
                        compute_us: 1,
                    })
                }
            }))
        };
        mal.add_replica(&m, flaky).unwrap();
        mal.add_replica(&m, echo()).unwrap();

        let breaker_count = |suffix: &str| -> u64 {
            mal.registry()
                .snapshot()
                .values
                .iter()
                .filter(|(name, _)| name.starts_with("queue/") && name.ends_with(suffix))
                .map(|(_, v)| match v {
                    clipper_metrics::MetricValue::Counter { value } => *value,
                    _ => 0,
                })
                .sum()
        };

        // Trip the flaky replica: every query still succeeds (redispatch
        // rescues the ones that land on it first).
        let mut i = 0u32;
        while breaker_count("/breaker_opened") == 0 {
            i += 1;
            assert!(i < 500, "breaker never opened");
            mal.predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .expect("sibling must rescue");
        }

        // Heal, then keep trickling traffic: the probe must close the
        // breaker without any external intervention.
        failing.store(false, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while breaker_count("/breaker_closed") == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "breaker never closed after heal: opened {} half-open {} closed {}",
                breaker_count("/breaker_opened"),
                breaker_count("/breaker_half_open"),
                breaker_count("/breaker_closed"),
            );
            i += 1;
            mal.predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .expect("healthy fleet");
            tokio::time::sleep(Duration::from_millis(2)).await;
        }

        // And the healed replica actually serves again (the probe itself
        // counts; steady traffic should follow once it rejoined).
        let before = healed_serves.load(Ordering::Relaxed);
        assert!(before >= 1, "the probe batch must have reached the replica");
        for _ in 0..50 {
            i += 1;
            mal.predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .expect("healthy fleet");
        }
        assert!(
            healed_serves.load(Ordering::Relaxed) > before,
            "a recovered replica must rejoin the rotation"
        );
    }

    #[tokio::test]
    async fn single_replica_retryable_failure_surfaces_typed_and_503() {
        // With no sibling to redispatch onto, a retryable failure must
        // fail exactly as before this feature existed — but typed, so
        // the HTTP layer can answer 503 instead of 500.
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::Timeout)
            }));
        mal.add_replica(&m, flaky).unwrap();
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), true) // through the cache
            .await
            .unwrap_err();
        match err {
            PredictError::Upstream {
                retryable: true,
                attempts: 1,
                ..
            } => {}
            other => panic!("expected typed retryable upstream error, got {other:?}"),
        }
        assert_eq!(err.http_status(), 503);
        assert_eq!(
            mal.cache().pending_len(),
            0,
            "the failed fill must settle its cache entry"
        );
    }

    #[tokio::test]
    async fn unhealthy_replicas_are_skipped() {
        struct Dead;
        impl BatchTransport for Dead {
            fn predict_batch(
                &self,
                _inputs: &[Input],
            ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
                Box::pin(async { Err(clipper_rpc::RpcError::ConnectionClosed) })
            }
            fn id(&self) -> String {
                "dead".into()
            }
            fn is_healthy(&self) -> bool {
                false
            }
        }
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, Arc::new(Dead)).unwrap();
        mal.add_replica(&m, echo()).unwrap();
        // All queries should route to the healthy replica.
        for i in 0..10 {
            let out = mal
                .predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .unwrap();
            assert_eq!(out, Output::Class(i as u32));
        }
    }

    #[tokio::test]
    async fn default_output_tracks_modal_label() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        // 3 queries answer Class(5), 1 answers Class(2).
        for v in [5.0, 5.0, 5.0, 2.0] {
            // distinct inputs: add small noise in second element
            mal.predict(&m, Arc::new(vec![v, rand::random::<f32>()]), false)
                .await
                .unwrap();
        }
        assert_eq!(mal.default_output(&m), Some(Output::Class(5)));
    }

    #[tokio::test]
    async fn remove_replicas_causes_no_replica_errors() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        mal.remove_replicas(&m);
        assert_eq!(mal.replica_count(&m), 0);
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
    }

    #[tokio::test]
    async fn hot_remove_drains_without_dropping_or_wedging() {
        // Two replicas under concurrent cached traffic; remove one
        // mid-stream. Nothing may hang, and after the drain completes the
        // cache must hold no pending entries.
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::Fixed(4),
                ..Default::default()
            },
        );
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));
        let q1 = mal
            .add_replica(&m, delayed(7, Duration::from_micros(300), c1.clone()))
            .unwrap();
        mal.add_replica(&m, delayed(7, Duration::from_micros(300), c2.clone()))
            .unwrap();

        let mut tasks = Vec::new();
        for i in 0..120 {
            let mal = mal.clone();
            let m = m.clone();
            tasks.push(tokio::spawn(async move {
                mal.predict(&m, Arc::new(vec![i as f32]), true).await
            }));
        }
        // Let some traffic land, then yank the first replica.
        tokio::time::sleep(Duration::from_millis(2)).await;
        let q = mal.remove_replica(&m, &q1).unwrap();
        assert_eq!(mal.replica_count(&m), 1);

        let mut ok = 0;
        for t in tasks {
            if t.await.unwrap().is_ok() {
                ok += 1;
            }
        }
        q.drained().await;
        assert_eq!(
            mal.cache().pending_len(),
            0,
            "drained replica must leave no wedged cache entries"
        );
        assert_eq!(ok, 120, "queries accepted before removal must complete");
        // The survivor keeps serving.
        let out = mal.predict(&m, Arc::new(vec![999.0]), true).await.unwrap();
        assert_eq!(out, Output::Class(7));
    }

    #[tokio::test]
    async fn remove_model_drains_and_is_revivable() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        mal.predict(&m, Arc::new(vec![3.0]), false).await.unwrap();

        let removed = mal.remove_model(&m).unwrap();
        assert!(!mal.has_model(&m));
        assert_eq!(removed.queues.len(), 1);
        assert_eq!(removed.transports.len(), 1);
        for q in &removed.queues {
            q.drained().await;
        }
        // Dispatch refuses; metrics are reclaimed.
        let err = mal
            .predict(&m, Arc::new(vec![4.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::ModelUnknown);
        let snap = mal.registry().snapshot();
        assert!(
            !snap.values.keys().any(|k| k.starts_with("model/m:v1/")),
            "per-model metrics must be unregistered"
        );

        // Revive the version from what remove_model returned.
        mal.add_model_with_policy(m.clone(), removed.cfg, removed.policy);
        for t in removed.transports {
            mal.add_replica(&m, t).unwrap();
        }
        let out = mal.predict(&m, Arc::new(vec![6.0]), false).await.unwrap();
        assert_eq!(out, Output::Class(6));
    }

    #[tokio::test]
    async fn hot_add_starts_receiving_traffic() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        let c1 = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, delayed(0, Duration::from_micros(500), c1.clone()))
            .unwrap();
        for i in 0..8 {
            mal.predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .unwrap();
        }
        // Hot-add a second replica; under concurrent load it must pick up
        // a share of the traffic.
        let c2 = Arc::new(AtomicU64::new(0));
        mal.add_replica(&m, delayed(0, Duration::from_micros(500), c2.clone()))
            .unwrap();
        let mut tasks = Vec::new();
        for i in 0..64 {
            let mal = mal.clone();
            let m = m.clone();
            tasks.push(tokio::spawn(async move {
                mal.predict(&m, Arc::new(vec![100.0 + i as f32]), false)
                    .await
            }));
        }
        for t in tasks {
            t.await.unwrap().unwrap();
        }
        assert!(
            c2.load(Ordering::Relaxed) >= 8,
            "hot-added replica must receive traffic, got {}",
            c2.load(Ordering::Relaxed)
        );
    }

    #[tokio::test]
    async fn per_model_gauges_and_shed_counter_register() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        mal.predict(&m, Arc::new(vec![1.0]), false).await.unwrap();
        let snap = mal.registry().snapshot();
        assert!(snap.values.contains_key("model/m:v1/queue_depth"));
        assert!(snap.values.contains_key("model/m:v1/inflight"));
        assert!(snap.values.contains_key("model/m:v1/shed"));
        assert!(snap
            .values
            .keys()
            .any(|k| k.starts_with("queue/m:v1:0/depth")));
        assert_eq!(mal.queue_depth(&m), 0);
        assert_eq!(mal.inflight(&m), 0);
    }

    #[tokio::test]
    async fn concurrent_identical_queries_collapse_to_one_evaluation() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        let evals = Arc::new(AtomicU64::new(0));
        let e2 = evals.clone();
        let t: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("slowcount", move |inputs: &[Input]| {
                e2.fetch_add(inputs.len() as u64, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(20));
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(1); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }));
        mal.add_replica(&m, t).unwrap();
        let input: Input = Arc::new(vec![42.0]);
        let mut tasks = Vec::new();
        for _ in 0..16 {
            let mal = mal.clone();
            let m = m.clone();
            let input = input.clone();
            tasks.push(tokio::spawn(async move {
                mal.predict(&m, input, true).await.unwrap()
            }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap(), Output::Class(1));
        }
        assert_eq!(
            evals.load(Ordering::Relaxed),
            1,
            "16 identical concurrent queries must evaluate once"
        );
    }

    #[tokio::test]
    async fn slo_admission_sheds_when_no_replica_can_meet_the_slo() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        // Every replica starts from a prior whose intercept alone (10ms)
        // blows the 5ms SLO: admission must shed up front with an honest
        // Overloaded instead of queueing a query that cannot make it.
        mal.add_model(
            m.clone(),
            BatchConfig {
                slo: Duration::from_millis(5),
                slo_admission: true,
                latency_prior: Some(LatencyPrior {
                    alpha_us: 10_000.0,
                    beta_us: 1_000.0,
                }),
                ..Default::default()
            },
        );
        mal.add_replica(&m, echo()).unwrap();
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::Overloaded);
        assert_eq!(mal.admission_shed_count(&m), 1);
        // No replicas at all must still surface NoReplicas, not a shed.
        let ghost = ModelId::new("ghost", 1);
        mal.add_model(
            ghost.clone(),
            BatchConfig {
                slo_admission: true,
                ..Default::default()
            },
        );
        let err = mal
            .predict(&ghost, Arc::new(vec![1.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
    }

    #[tokio::test]
    async fn slo_admission_admits_while_any_sibling_can_meet_the_slo() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                slo: Duration::from_millis(5),
                slo_admission: true,
                ..Default::default()
            },
        );
        mal.add_replica(&m, echo()).unwrap();
        mal.add_replica(&m, echo()).unwrap();
        // Teach replica 0 a curve far over the SLO; replica 1 a fast one.
        let slow = mal.replica_latency_model(&m, "m:v1:0").unwrap();
        let fast = mal.replica_latency_model(&m, "m:v1:1").unwrap();
        for round in 0..4 {
            for b in 1..=8usize {
                let _ = round;
                slow.observe(b, Duration::from_micros(50_000 + 5_000 * b as u64));
                fast.observe(b, Duration::from_micros(100 + 10 * b as u64));
            }
        }
        assert!(slow.is_established() && fast.is_established());
        // One sibling can still meet the deadline: admit.
        let out = mal.predict(&m, Arc::new(vec![3.0]), false).await.unwrap();
        assert_eq!(out, Output::Class(3));
        assert_eq!(mal.admission_shed_count(&m), 0);
        // Now the fast sibling degrades too: shed.
        for round in 0..40 {
            for b in 1..=8usize {
                let _ = round;
                fast.observe(b, Duration::from_micros(50_000 + 5_000 * b as u64));
            }
        }
        let err = mal
            .predict(&m, Arc::new(vec![4.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::Overloaded);
        assert_eq!(mal.admission_shed_count(&m), 1);
    }

    #[tokio::test]
    async fn slo_admission_is_off_by_default() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        // Hopeless curve, but admission control is opt-in: the default
        // config must keep today's queue-then-serve behavior.
        mal.add_model(
            m.clone(),
            BatchConfig {
                slo: Duration::from_millis(5),
                latency_prior: Some(LatencyPrior {
                    alpha_us: 10_000.0,
                    beta_us: 1_000.0,
                }),
                ..Default::default()
            },
        );
        mal.add_replica(&m, echo()).unwrap();
        let out = mal.predict(&m, Arc::new(vec![9.0]), false).await.unwrap();
        assert_eq!(out, Output::Class(9));
        assert_eq!(mal.admission_shed_count(&m), 0);
    }
}
