//! A small feed-forward neural network (ReLU hidden layers, softmax output).
//!
//! Stands in for the paper's conv nets at the *serving* interface: a dense
//! model whose per-batch cost is dominated by matrix products, giving the
//! GPU-simulated containers a real compute kernel to run.

use super::{Label, Model};
use crate::datasets::Dataset;
use crate::linalg::{argmax, dot, softmax};
use rand::prelude::*;
use rand_distr::Normal;

/// Hyperparameters for [`Mlp::train`].
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `vec![64, 32]`.
    pub hidden: Vec<usize>,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![64],
            epochs: 8,
            lr: 0.1,
        }
    }
}

struct Layer {
    /// Row-major weights: `out` rows of `in` columns.
    w: Vec<Vec<f32>>,
    b: Vec<f32>,
}

impl Layer {
    fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.w
            .iter()
            .zip(self.b.iter())
            .map(|(row, &b)| dot(row, x) + b)
            .collect()
    }
}

/// Multi-layer perceptron classifier.
pub struct Mlp {
    name: String,
    num_classes: usize,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Train with vanilla backprop SGD (batch size 1).
    pub fn train(dataset: &Dataset, cfg: &MlpConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![dataset.num_features()];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(dataset.num_classes());

        let mut layers: Vec<Layer> = dims
            .windows(2)
            .map(|w| {
                let (din, dout) = (w[0], w[1]);
                let std = (2.0 / din as f32).sqrt();
                let normal = Normal::new(0.0f32, std).expect("init normal");
                Layer {
                    w: (0..dout)
                        .map(|_| (0..din).map(|_| normal.sample(&mut rng)).collect())
                        .collect(),
                    b: vec![0.0; dout],
                }
            })
            .collect();

        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let ex = &dataset.train[i];
                // Forward pass, keeping activations.
                let mut acts: Vec<Vec<f32>> = vec![ex.x.clone()];
                for (li, layer) in layers.iter().enumerate() {
                    let mut z = layer.forward(acts.last().expect("activation"));
                    if li + 1 < layers.len() {
                        for v in z.iter_mut() {
                            *v = v.max(0.0); // ReLU
                        }
                    } else {
                        softmax(&mut z);
                    }
                    acts.push(z);
                }
                // Backward pass: delta at output = probs - onehot.
                let mut delta: Vec<f32> = acts.last().expect("output").clone();
                delta[ex.y as usize] -= 1.0;
                for li in (0..layers.len()).rev() {
                    let input = acts[li].clone();
                    // Propagate before mutating weights.
                    let mut next_delta = vec![0.0f32; input.len()];
                    for (j, row) in layers[li].w.iter().enumerate() {
                        for (k, &wjk) in row.iter().enumerate() {
                            next_delta[k] += delta[j] * wjk;
                        }
                    }
                    // ReLU derivative w.r.t. this layer's input activation.
                    if li > 0 {
                        for (nd, &a) in next_delta.iter_mut().zip(acts[li].iter()) {
                            if a <= 0.0 {
                                *nd = 0.0;
                            }
                        }
                    }
                    let layer = &mut layers[li];
                    for (j, row) in layer.w.iter_mut().enumerate() {
                        let g = delta[j];
                        if g != 0.0 {
                            for (wjk, &xk) in row.iter_mut().zip(input.iter()) {
                                *wjk -= cfg.lr * g * xk;
                            }
                            layer.b[j] -= cfg.lr * g;
                        }
                    }
                    delta = next_delta;
                }
            }
        }

        Mlp {
            name: "mlp".into(),
            num_classes: dataset.num_classes(),
            layers,
        }
    }

    /// Number of layers (including output).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

impl Model for Mlp {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut a = x.to_vec();
        let n = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            a = layer.forward(&a);
            if li + 1 < n {
                for v in a.iter_mut() {
                    *v = v.max(0.0);
                }
            } else {
                softmax(&mut a);
            }
        }
        a
    }
    fn predict(&self, x: &[f32]) -> Label {
        argmax(&self.scores(x)) as Label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::eval::accuracy;

    #[test]
    fn mlp_learns() {
        let ds = DatasetSpec::speech_like()
            .with_train_size(390)
            .with_test_size(100)
            .with_difficulty(0.3)
            .generate(91);
        let m = Mlp::train(&ds, &MlpConfig::default(), 5);
        let acc = accuracy(&m, &ds.test);
        assert!(acc > 0.6, "accuracy {acc}");
        assert_eq!(m.num_layers(), 2);
    }

    #[test]
    fn output_is_probability_vector() {
        let ds = DatasetSpec::speech_like()
            .with_train_size(100)
            .with_test_size(10)
            .generate(91);
        let m = Mlp::train(
            &ds,
            &MlpConfig {
                epochs: 1,
                ..Default::default()
            },
            5,
        );
        let s = m.scores(&ds.test[0].x);
        assert_eq!(s.len(), 39);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deeper_config_builds_more_layers() {
        let ds = DatasetSpec::speech_like()
            .with_train_size(50)
            .with_test_size(10)
            .generate(91);
        let m = Mlp::train(
            &ds,
            &MlpConfig {
                hidden: vec![32, 16],
                epochs: 1,
                lr: 0.05,
            },
            5,
        );
        assert_eq!(m.num_layers(), 3);
    }
}
