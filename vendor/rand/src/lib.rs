//! Minimal API-compatible substitute for the [`rand`] crate (0.9 API).
//!
//! Provides the subset the workspace uses: [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64), the [`Rng`] extension methods
//! (`random_range`, `random_bool`, `random`, `sample`), [`SeedableRng`],
//! slice helpers (`shuffle`, `choose`), the [`distr::Distribution`] trait,
//! and the free [`random`] function. Deterministic for a fixed seed, which
//! is what every experiment in this workspace relies on.

pub mod distr;
pub mod rngs;
pub mod seq;

pub use distr::Distribution;
pub use rngs::StdRng;

/// Convenience re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distr::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&b[..rest.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f32`/`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p out of [0,1]: {p}");
        self.random::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types with a uniform sampler over a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. Panics if the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "empty range in random_range");
                let span = (high as i128 - low as i128) as u128;
                // Widening multiply-shift: unbiased enough for simulation
                // use, and branch-free.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "empty range in random_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "empty inclusive range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draw one value from the thread-local generator.
///
/// There is no OS entropy source in this build environment, so the
/// thread-local generator is seeded from the monotonic clock and a
/// per-thread counter — unpredictable enough for jitter, NOT for secrets.
pub fn random<T: StandardSample>() -> T {
    THREAD_RNG.with(|cell| {
        let mut rng = cell.borrow_mut();
        T::sample_standard(&mut *rng)
    })
}

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

static THREAD_SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

thread_local! {
    static THREAD_RNG: RefCell<StdRng> = RefCell::new({
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let c = THREAD_SEED.fetch_add(0x6a09_e667_f3bc_c909, Ordering::Relaxed);
        StdRng::seed_from_u64(t ^ c)
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(0u32..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
