//! Failure-recovery bench — the predict-path robustness entry in the
//! repo's bench trajectory (`BENCH_recovery.json`).
//!
//! Exercises the three recovery layers on a two-replica fleet driven
//! straight through the model abstraction layer (no app-level default
//! output, so upstream failures stay client-visible):
//!
//! 1. **Drop arm** — one replica drops 80% of its batches
//!    ([`FaultyTransport`] → `RpcError::Injected`, retryable). With
//!    deadline-budgeted retry on (the default), every failed query is
//!    redispatched onto the healthy sibling: **zero client-visible
//!    errors**. A control run with `retry_max_attempts: 1` shows the
//!    counterfactual: the same fault window surfaces typed
//!    `PredictError::Upstream` errors. The flaky replica's circuit
//!    breaker must also walk its full lifecycle — open under the error
//!    rate, half-open after the cooldown once the fault lifts, closed on
//!    a successful probe.
//! 2. **Straggler arm** — both replicas straggle (5% of batches +40 ms).
//!    With hedged dispatch off, the stragglers own the p99; with the
//!    hedge on, a straggling batch is raced against the sibling and the
//!    p99 collapses toward the base service time.
//!
//! Every arm is zero-loss: each issued query returns exactly one
//! outcome, and `ok + shed + errors == issued` is self-validated from
//! the emitted JSON.
//!
//! Flags: `--smoke` (short phases for CI), `--out <path>` (default
//! `BENCH_recovery.json`). `CLIPPER_BENCH_SECONDS` stretches the phase
//! length. With `RECOVERY_ENFORCE=1` the binary exits non-zero unless:
//! the retry-on drop arm saw zero client-visible errors while the
//! retry-off control saw some, retries actually fired, the breaker
//! completed open → half-open → closed, the hedge fired, and the
//! hedge-on p99 undercuts the hedge-off p99 by at least 30%.

use clipper_core::batching::{BatchStrategy, HedgeConfig};
use clipper_core::{BatchConfig, ModelAbstractionLayer, ModelId, PredictError};
use clipper_metrics::{Histogram, MetricValue, Registry};
use clipper_rpc::faulty::{FaultConfig, FaultyTransport};
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::{BatchTransport, FnTransport, Input};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODEL: &str = "m";
const WORKERS: usize = 8;

/// One closed-loop traffic run against a MAL.
#[derive(Clone, Serialize, Deserialize)]
struct ArmStats {
    issued: u64,
    ok: u64,
    shed: u64,
    /// Typed `PredictError::Upstream` failures — the client-visible
    /// residue the retry path exists to eliminate.
    upstream_errors: u64,
    /// Any other error (should be 0 in every arm).
    other_errors: u64,
    /// `queue/*/retried` total at the end of the run.
    retried: u64,
    /// `queue/*/hedged` total at the end of the run.
    hedged: u64,
    p50_ms: f64,
    p99_ms: f64,
}

impl ArmStats {
    fn accounted(&self) -> bool {
        self.ok + self.shed + self.upstream_errors + self.other_errors == self.issued
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct BreakerLifecycle {
    opened: u64,
    half_opened: u64,
    closed: u64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    phase_seconds: f64,
    drop_prob: f64,
    straggler_prob: f64,
    straggler_delay_ms: u64,
    retry_on: ArmStats,
    retry_off: ArmStats,
    /// Breaker transition counters observed on the retry-on drop arm
    /// (fault window + recovery traffic past the cooldown).
    breaker: BreakerLifecycle,
    hedge_off: ArmStats,
    hedge_on: ArmStats,
}

/// A clean inner replica: instant answers, tagged with its version.
fn inner_transport(name: &str) -> Arc<dyn BatchTransport> {
    Arc::new(FnTransport::new(name, |inputs: &[Input]| {
        Ok(PredictReply {
            outputs: vec![WireOutput::Class(1); inputs.len()],
            queue_us: 0,
            compute_us: 50,
        })
    }))
}

struct Arm {
    mal: Arc<ModelAbstractionLayer>,
    model: ModelId,
    /// The chaos handles, one per replica, in attach order.
    faults: Vec<Arc<FaultyTransport>>,
}

/// Build a fresh MAL with `n` [`FaultyTransport`]-wrapped replicas, all
/// starting from `base` fault models.
fn build_arm(cfg: BatchConfig, n: usize, base: &FaultConfig, seed: u64) -> Arm {
    let mal = ModelAbstractionLayer::new(4_096, Registry::new());
    let model = ModelId::new(MODEL, 1);
    mal.add_model(model.clone(), cfg);
    let faults: Vec<Arc<FaultyTransport>> = (0..n)
        .map(|r| {
            Arc::new(FaultyTransport::new(
                inner_transport(&format!("{MODEL}-r{r}")),
                base.clone(),
                seed ^ (r as u64) << 8,
            ))
        })
        .collect();
    for f in &faults {
        mal.add_replica(&model, f.clone() as Arc<dyn BatchTransport>)
            .expect("attach replica");
    }
    Arm { mal, model, faults }
}

/// Sum every `queue/*/<suffix>` counter in the registry.
fn queue_counter_sum(registry: &Registry, suffix: &str) -> u64 {
    registry
        .snapshot()
        .values
        .iter()
        .filter(|(name, _)| name.starts_with("queue/") && name.ends_with(suffix))
        .map(|(_, v)| match v {
            MetricValue::Counter { value } => *value,
            _ => 0,
        })
        .sum()
}

/// Closed-loop traffic: `WORKERS` tasks issue unique-input queries until
/// `stop_at`; every outcome is counted, every latency recorded into the
/// caller's histogram (shared so multi-phase arms accumulate one
/// distribution).
async fn drive(arm: &Arm, stop_at: Instant, hist: &Histogram) -> (u64, u64, u64, u64, u64) {
    let issued = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let upstream = Arc::new(AtomicU64::new(0));
    let other = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let mut tasks = Vec::new();
    for w in 0..WORKERS {
        let mal = arm.mal.clone();
        let model = arm.model.clone();
        let hist = hist.clone();
        let (issued, ok, shed, upstream, other, done) = (
            issued.clone(),
            ok.clone(),
            shed.clone(),
            upstream.clone(),
            other.clone(),
            done.clone(),
        );
        tasks.push(tokio::spawn(async move {
            let mut seq = 0u64;
            while !done.load(Ordering::Relaxed) {
                seq += 1;
                issued.fetch_add(1, Ordering::Relaxed);
                let input: Input = Arc::new(vec![seq as f32, w as f32]);
                let t0 = Instant::now();
                match mal.predict(&model, input, false).await {
                    Ok(_) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                        hist.record(t0.elapsed().as_micros() as u64);
                    }
                    Err(PredictError::Overloaded) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(PredictError::Upstream { .. }) => {
                        upstream.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        other.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    let stopper = {
        let done = done.clone();
        tokio::spawn(async move {
            tokio::time::sleep_until(stop_at.into()).await;
            done.store(true, Ordering::Relaxed);
        })
    };
    for t in tasks {
        t.await.expect("worker task");
    }
    stopper.await.expect("stopper task");
    (
        issued.load(Ordering::Relaxed),
        ok.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        upstream.load(Ordering::Relaxed),
        other.load(Ordering::Relaxed),
    )
}

fn stats_from(run: (u64, u64, u64, u64, u64), hist: &Histogram, registry: &Registry) -> ArmStats {
    let (issued, ok, shed, upstream_errors, other_errors) = run;
    let snap = hist.snapshot();
    ArmStats {
        issued,
        ok,
        shed,
        upstream_errors,
        other_errors,
        retried: queue_counter_sum(registry, "/retried"),
        hedged: queue_counter_sum(registry, "/hedged"),
        p50_ms: snap.p50() as f64 / 1_000.0,
        p99_ms: snap.p99() as f64 / 1_000.0,
    }
}

/// The drop arm: replica 0 drops `drop_prob` of its batches for
/// `phase`, then heals; traffic continues for another `phase` (past the
/// breaker cooldown) so the breaker can complete its lifecycle.
async fn run_drop_arm(
    retry: bool,
    drop_prob: f64,
    phase: Duration,
) -> (ArmStats, BreakerLifecycle) {
    let cfg = BatchConfig {
        strategy: BatchStrategy::NoBatching,
        slo: Duration::from_millis(100),
        retry_max_attempts: if retry { 3 } else { 1 },
        ..BatchConfig::default()
    };
    let arm = build_arm(cfg, 2, &FaultConfig::default(), 0xD20F);
    arm.faults[0].set_config(FaultConfig {
        drop_prob,
        ..FaultConfig::default()
    });
    let hist = Histogram::new();
    let faulty = drive(&arm, Instant::now() + phase, &hist).await;
    arm.faults[0].set_config(FaultConfig::default());
    let healed = drive(&arm, Instant::now() + phase, &hist).await;
    let merged = (
        faulty.0 + healed.0,
        faulty.1 + healed.1,
        faulty.2 + healed.2,
        faulty.3 + healed.3,
        faulty.4 + healed.4,
    );
    let registry = arm.mal.registry();
    let breaker = BreakerLifecycle {
        opened: queue_counter_sum(registry, "/breaker_opened"),
        half_opened: queue_counter_sum(registry, "/breaker_half_open"),
        closed: queue_counter_sum(registry, "/breaker_closed"),
    };
    (stats_from(merged, &hist, registry), breaker)
}

/// The straggler arm: both replicas add +`delay` to 5% of batches over a
/// ~1 ms base service time. With the hedge on, a straggling batch races
/// a redispatch to the sibling after ~3× the predicted latency.
async fn run_straggler_arm(
    hedge: Option<HedgeConfig>,
    straggler_prob: f64,
    delay: Duration,
    phase: Duration,
) -> ArmStats {
    let cfg = BatchConfig {
        strategy: BatchStrategy::NoBatching,
        slo: Duration::from_millis(200),
        hedge,
        ..BatchConfig::default()
    };
    let base = FaultConfig {
        base_delay: Duration::from_millis(1),
        straggler_prob,
        straggler_delay: delay,
        ..FaultConfig::default()
    };
    let arm = build_arm(cfg, 2, &base, 0x57A6);
    let hist = Histogram::new();
    let run = drive(&arm, Instant::now() + phase, &hist).await;
    stats_from(run, &hist, arm.mal.registry())
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut smoke = false;
    let mut out_path = "BENCH_recovery.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other:?} (see --smoke/--out)"),
        }
        i += 1;
    }
    let phase: f64 = std::env::var("CLIPPER_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1.0 } else { 2.5 });
    // The healed half of the drop arm must outlast the breaker cooldown
    // (500 ms) with room for a probe, or the lifecycle can't complete.
    let phase = Duration::from_secs_f64(phase.clamp(0.8, 30.0));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let drop_prob = 0.8;
    let straggler_prob = 0.05;
    let straggler_delay = Duration::from_millis(40);
    println!(
        "== recovery: 2 replicas, {WORKERS} workers, {:.1}s phases, {cores} cores ==\n",
        phase.as_secs_f64()
    );

    println!(
        "drop arm: replica 0 drops {:.0}% of batches…",
        drop_prob * 100.0
    );
    let (retry_on, breaker) = run_drop_arm(true, drop_prob, phase).await;
    println!(
        "  retry on : issued {} ok {} upstream {} retried {} (breaker o/h/c {}/{}/{})",
        retry_on.issued,
        retry_on.ok,
        retry_on.upstream_errors,
        retry_on.retried,
        breaker.opened,
        breaker.half_opened,
        breaker.closed
    );
    let (retry_off, _) = run_drop_arm(false, drop_prob, phase).await;
    println!(
        "  retry off: issued {} ok {} upstream {} (the counterfactual)",
        retry_off.issued, retry_off.ok, retry_off.upstream_errors
    );

    println!(
        "straggler arm: {:.0}% of batches +{straggler_delay:?}…",
        straggler_prob * 100.0
    );
    let hedge_off = run_straggler_arm(None, straggler_prob, straggler_delay, phase).await;
    let hedge_on = run_straggler_arm(
        Some(HedgeConfig::default()),
        straggler_prob,
        straggler_delay,
        phase,
    )
    .await;
    println!(
        "  hedge off: p50 {:.1}ms p99 {:.1}ms\n  hedge on : p50 {:.1}ms p99 {:.1}ms (hedged {})",
        hedge_off.p50_ms, hedge_off.p99_ms, hedge_on.p50_ms, hedge_on.p99_ms, hedge_on.hedged
    );

    let out = Report {
        bench: "recovery".into(),
        cores,
        phase_seconds: phase.as_secs_f64(),
        drop_prob,
        straggler_prob,
        straggler_delay_ms: straggler_delay.as_millis() as u64,
        retry_on,
        retry_off,
        breaker,
        hedge_off,
        hedge_on,
    };
    println!(
        "\nretry-on errors {} · retry-off errors {} · retried {} · hedged {} · p99 {:.1}→{:.1}ms",
        out.retry_on.upstream_errors + out.retry_on.other_errors,
        out.retry_off.upstream_errors + out.retry_off.other_errors,
        out.retry_on.retried,
        out.hedge_on.hedged,
        out.hedge_off.p99_ms,
        out.hedge_on.p99_ms
    );

    let json = serde_json::to_string(&out).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back and every arm
    // must account for every issued query — the zero-loss invariant.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    for (name, arm) in [
        ("retry_on", &parsed.retry_on),
        ("retry_off", &parsed.retry_off),
        ("hedge_off", &parsed.hedge_off),
        ("hedge_on", &parsed.hedge_on),
    ] {
        assert!(arm.issued > 0, "malformed report: {name} saw no traffic");
        assert!(
            arm.accounted(),
            "malformed report: {name} lost queries ({} issued, {} accounted)",
            arm.issued,
            arm.ok + arm.shed + arm.upstream_errors + arm.other_errors
        );
    }

    if std::env::var("RECOVERY_ENFORCE").as_deref() == Ok("1") {
        let mut ok = true;
        if out.retry_on.upstream_errors + out.retry_on.other_errors > 0 {
            eprintln!(
                "FAIL: retry-on drop arm surfaced {} client-visible errors (want 0)",
                out.retry_on.upstream_errors + out.retry_on.other_errors
            );
            ok = false;
        }
        if out.retry_on.retried == 0 {
            eprintln!("FAIL: drop arm never exercised the retry path");
            ok = false;
        }
        if out.retry_off.upstream_errors == 0 {
            eprintln!("FAIL: retry-off control saw no errors — the fault window is inert");
            ok = false;
        }
        if out.breaker.opened == 0 || out.breaker.half_opened == 0 || out.breaker.closed == 0 {
            eprintln!(
                "FAIL: breaker lifecycle incomplete (opened {} half-open {} closed {})",
                out.breaker.opened, out.breaker.half_opened, out.breaker.closed
            );
            ok = false;
        }
        if out.hedge_on.hedged == 0 {
            eprintln!("FAIL: straggler arm never fired a hedge");
            ok = false;
        }
        if out.hedge_on.p99_ms >= out.hedge_off.p99_ms * 0.7 {
            eprintln!(
                "FAIL: hedged p99 {:.1}ms not under 70% of unhedged {:.1}ms",
                out.hedge_on.p99_ms, out.hedge_off.p99_ms
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "enforce: ok (retry-on clean vs control {} errors, breaker cycled, hedged p99 {:.1}ms < {:.1}ms)",
            out.retry_off.upstream_errors, out.hedge_on.p99_ms, out.hedge_off.p99_ms
        );
    }
}
