//! Internal calibration probe: model error vs difficulty and train size.
//! Not part of the paper reproduction; used to pick experiment constants.

use clipper_ml::datasets::DatasetSpec;
use clipper_ml::eval::{accuracy, top_k_accuracy};
use clipper_ml::models::*;

fn main() {
    println!("cifar-like n=900 (fig7 zoo): err by difficulty");
    for difficulty in [0.12f32, 0.18, 0.25] {
        let ds = DatasetSpec::cifar_like()
            .with_train_size(900)
            .with_test_size(400)
            .with_difficulty(difficulty)
            .generate(11);
        let svm = LinearSvm::train(
            &ds,
            &LinearSvmConfig {
                epochs: 3,
                ..Default::default()
            },
            3,
        );
        let lr = LogisticRegression::train(
            &ds,
            &LogisticRegressionConfig {
                epochs: 3,
                ..Default::default()
            },
            2,
        );
        let mlp = Mlp::train(
            &ds,
            &MlpConfig {
                hidden: vec![48],
                epochs: 4,
                lr: 0.08,
            },
            1,
        );
        let rf = RandomForest::train(
            &ds,
            &RandomForestConfig {
                num_trees: 12,
                ..Default::default()
            },
            4,
        );
        let knn = Knn::train(
            &ds,
            &KnnConfig {
                k: 5,
                max_references: 1_000,
            },
            5,
        );
        println!(
            "  d={difficulty}: svm={:.3} lr={:.3} mlp={:.3} rf={:.3} knn={:.3}",
            1.0 - accuracy(&svm, &ds.test),
            1.0 - accuracy(&lr, &ds.test),
            1.0 - accuracy(&mlp, &ds.test),
            1.0 - accuracy(&rf, &ds.test),
            1.0 - accuracy(&knn, &ds.test),
        );
    }
    println!("imagenet-like 200 classes n=5000: logreg top-5 err");
    for difficulty in [0.12f32, 0.18, 0.25] {
        let mut spec = DatasetSpec::imagenet_like();
        spec.num_classes = 200;
        let ds = spec
            .with_train_size(5_000)
            .with_test_size(300)
            .with_difficulty(difficulty)
            .generate(13);
        let m = LogisticRegression::train(
            &ds,
            &LogisticRegressionConfig {
                epochs: 2,
                ..Default::default()
            },
            3,
        );
        println!(
            "  d={difficulty}: top5 err={:.3}",
            1.0 - top_k_accuracy(&m, &ds.test, 5)
        );
    }
    println!("mnist-like: linear svm err (fig8 staggering)");
    for difficulty in [0.2f32, 0.3] {
        for train in [30usize, 80, 200, 800, 1600] {
            let ds = DatasetSpec::mnist_like()
                .with_train_size(train)
                .with_test_size(400)
                .with_difficulty(difficulty)
                .generate(31);
            let m = LinearSvm::train(&ds, &LinearSvmConfig::default(), 3);
            println!(
                "  d={difficulty} n={train}: err={:.3}",
                1.0 - accuracy(&m, &ds.test)
            );
        }
    }
    println!("mnist-like single trees (fig9): err by difficulty");
    for difficulty in [0.2f32, 0.3] {
        let ds = DatasetSpec::mnist_like()
            .with_train_size(900)
            .with_test_size(400)
            .with_difficulty(difficulty)
            .generate(23);
        let tree = DecisionTree::train(
            &ds,
            &DecisionTreeConfig {
                max_depth: 8,
                feature_subsample: Some(48),
                ..Default::default()
            },
            3,
        );
        let rf = RandomForest::train(
            &ds,
            &RandomForestConfig {
                num_trees: 16,
                ..Default::default()
            },
            4,
        );
        println!(
            "  d={difficulty}: tree={:.3} rf16={:.3}",
            1.0 - accuracy(&tree, &ds.test),
            1.0 - accuracy(&rf, &ds.test)
        );
    }
}
