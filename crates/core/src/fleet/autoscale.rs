//! Autoscaling: a control loop over signals the scheduler already
//! computes.
//!
//! Per evaluation period the loop samples the model's total backlog
//! (`Σ occupancy × service EWMA` across replicas) and the admission-shed
//! delta, then asks the pure [`evaluate`] function for a decision:
//!
//! - **Up** when the per-replica backlog crosses the scale-up threshold
//!   or admission started shedding — capacity is demonstrably short;
//! - **Down** after `scale_down_evals` consecutive quiet periods (low
//!   backlog, zero sheds) — sustained calm, not one lucky sample;
//! - **Hold** otherwise, and always inside `[min_replicas,
//!   max_replicas]`.
//!
//! Scale-up launches a *managed* replica through the configured
//! [`ReplicaLauncher`](super::ReplicaLauncher) capability; scale-down
//! reaps the newest managed one through the same zero-drop graceful
//! drain the health monitor uses. Unmanaged (self-registered) replicas
//! are never reaped.

use super::registry::{Fleet, FleetEvent, ReplicaHealth};
use crate::api::ReplicaSpec;
use crate::types::ModelId;
use std::time::Duration;

/// Autoscaler policy for one model.
#[derive(Clone, Debug)]
pub struct AutoscaleConfig {
    /// The model whose fleet is managed.
    pub model: ModelId,
    /// Never reap below this many replicas.
    pub min_replicas: usize,
    /// Never launch above this many replicas.
    pub max_replicas: usize,
    /// Evaluation period.
    pub eval_interval: Duration,
    /// Per-replica backlog (ns of queued work) at or above which the
    /// loop scales up.
    pub scale_up_backlog_ns: u64,
    /// Per-replica backlog at or below which an evaluation counts as
    /// quiet.
    pub scale_down_backlog_ns: u64,
    /// Consecutive quiet evaluations before scaling down.
    pub scale_down_evals: u32,
    /// Launcher capability used for managed replicas.
    pub capability: String,
    /// Container-name prefix for managed replicas (`{prefix}-{seq}`).
    pub name_prefix: String,
}

/// One evaluation period's observed load signals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleSignals {
    /// Live replica count.
    pub replicas: usize,
    /// Total backlog across replicas, ns of queued work.
    pub backlog_ns: u64,
    /// Admission sheds since the previous evaluation.
    pub admission_sheds_delta: u64,
}

/// What one evaluation decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoscaleDecision {
    /// Capacity matches load.
    Hold,
    /// Launch one replica.
    Up,
    /// Reap one managed replica.
    Down,
}

/// The pure scaling decision — separated from the control loop so the
/// policy is unit-testable without queues or clocks. `quiet_evals` is
/// the count of consecutive quiet evaluations *before* this one.
pub fn evaluate(cfg: &AutoscaleConfig, s: &ScaleSignals, quiet_evals: u32) -> AutoscaleDecision {
    if s.replicas < cfg.min_replicas {
        return AutoscaleDecision::Up;
    }
    let per_replica = s.backlog_ns / s.replicas.max(1) as u64;
    if s.replicas < cfg.max_replicas
        && (per_replica >= cfg.scale_up_backlog_ns || s.admission_sheds_delta > 0)
    {
        return AutoscaleDecision::Up;
    }
    let quiet = per_replica <= cfg.scale_down_backlog_ns && s.admission_sheds_delta == 0;
    if quiet && s.replicas > cfg.min_replicas && quiet_evals + 1 >= cfg.scale_down_evals.max(1) {
        return AutoscaleDecision::Down;
    }
    AutoscaleDecision::Hold
}

/// Mutable loop state carried between evaluations.
#[derive(Debug, Default)]
pub struct AutoscalerState {
    quiet_evals: u32,
    last_sheds: u64,
    launched: u64,
}

impl Fleet {
    /// Spawn the autoscaler control loop for `cfg.model`. The task runs
    /// until the runtime drops.
    pub fn spawn_autoscaler(&self, cfg: AutoscaleConfig) -> tokio::task::JoinHandle<()> {
        let fleet = self.clone();
        tokio::spawn(async move {
            let mut state = AutoscalerState::default();
            loop {
                tokio::time::sleep(cfg.eval_interval).await;
                fleet.autoscale_tick(&cfg, &mut state).await;
            }
        })
    }

    /// One evaluation: sample signals, decide, act. Public so tests and
    /// benches can step the loop deterministically.
    pub async fn autoscale_tick(
        &self,
        cfg: &AutoscaleConfig,
        state: &mut AutoscalerState,
    ) -> AutoscaleDecision {
        let sheds = self.inner.mal.admission_shed_count(&cfg.model);
        let signals = ScaleSignals {
            replicas: self.inner.mal.replica_count(&cfg.model),
            backlog_ns: self.inner.mal.backlog_ns(&cfg.model),
            admission_sheds_delta: sheds.saturating_sub(state.last_sheds),
        };
        state.last_sheds = sheds;
        let decision = evaluate(cfg, &signals, state.quiet_evals);
        let per_replica = signals.backlog_ns / signals.replicas.max(1) as u64;
        let quiet = per_replica <= cfg.scale_down_backlog_ns && signals.admission_sheds_delta == 0;
        state.quiet_evals = if quiet { state.quiet_evals + 1 } else { 0 };
        match decision {
            AutoscaleDecision::Hold => {}
            AutoscaleDecision::Up => {
                state.launched += 1;
                let name = format!("{}-{}", cfg.name_prefix, state.launched);
                let spec = ReplicaSpec {
                    container_name: name.clone(),
                    model_name: cfg.model.name.clone(),
                    model_version: cfg.model.version,
                    capabilities: vec![cfg.capability.clone()],
                };
                match self.register_inner(spec, true) {
                    Ok(_) => self.push_event(FleetEvent::ScaledUp { container: name }),
                    Err(_) => state.launched -= 1,
                }
                state.quiet_evals = 0;
            }
            AutoscaleDecision::Down => {
                if let Some(victim) = self.newest_managed(&cfg.model) {
                    if self.deregister(&victim).await.is_ok() {
                        self.push_event(FleetEvent::ScaledDown { container: victim });
                    }
                }
                state.quiet_evals = 0;
            }
        }
        decision
    }

    /// The most recently admitted managed, non-expired member of
    /// `model` — the scale-down victim (LIFO keeps the stable core of
    /// the fleet warm).
    fn newest_managed(&self, model: &ModelId) -> Option<String> {
        self.inner
            .members
            .lock()
            .iter()
            .filter(|(_, m)| m.managed && m.health != ReplicaHealth::Expired && &m.model == model)
            .max_by_key(|(_, m)| m.joined_seq)
            .map(|(n, _)| n.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            model: ModelId::new("m", 1),
            min_replicas: 1,
            max_replicas: 4,
            eval_interval: Duration::from_millis(100),
            scale_up_backlog_ns: 10_000_000,
            scale_down_backlog_ns: 1_000_000,
            scale_down_evals: 3,
            capability: "local:test".into(),
            name_prefix: "auto".into(),
        }
    }

    fn sig(replicas: usize, backlog_ns: u64, sheds: u64) -> ScaleSignals {
        ScaleSignals {
            replicas,
            backlog_ns,
            admission_sheds_delta: sheds,
        }
    }

    #[test]
    fn below_minimum_always_scales_up() {
        assert_eq!(evaluate(&cfg(), &sig(0, 0, 0), 0), AutoscaleDecision::Up);
    }

    #[test]
    fn backlog_over_threshold_scales_up() {
        // 2 replicas, 30ms total backlog → 15ms each, over the 10ms bar.
        assert_eq!(
            evaluate(&cfg(), &sig(2, 30_000_000, 0), 0),
            AutoscaleDecision::Up
        );
    }

    #[test]
    fn admission_sheds_scale_up_even_with_low_backlog() {
        assert_eq!(evaluate(&cfg(), &sig(2, 0, 5), 0), AutoscaleDecision::Up);
    }

    #[test]
    fn at_max_holds_despite_load() {
        assert_eq!(
            evaluate(&cfg(), &sig(4, 400_000_000, 9), 0),
            AutoscaleDecision::Hold
        );
    }

    #[test]
    fn scale_down_needs_sustained_quiet() {
        let c = cfg();
        let s = sig(2, 0, 0);
        assert_eq!(evaluate(&c, &s, 0), AutoscaleDecision::Hold);
        assert_eq!(evaluate(&c, &s, 1), AutoscaleDecision::Hold);
        assert_eq!(evaluate(&c, &s, 2), AutoscaleDecision::Down);
    }

    #[test]
    fn scale_down_never_breaches_minimum() {
        assert_eq!(evaluate(&cfg(), &sig(1, 0, 0), 99), AutoscaleDecision::Hold);
    }

    #[test]
    fn moderate_backlog_holds() {
        // 5ms per replica: above the quiet bar, below the scale-up bar.
        assert_eq!(
            evaluate(&cfg(), &sig(2, 10_000_000, 0), 9),
            AutoscaleDecision::Hold
        );
    }
}
