//! Smoke tests for the workspace surface: the `clipper::prelude` facade,
//! the per-crate re-exports, and the quickstart serving flow in-process.

use clipper::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Every crate re-export on the facade is reachable and usable.
#[test]
fn facade_reexports_compile_and_link() {
    // metrics
    let registry = clipper::metrics::Registry::new();
    let counter = registry.counter("smoke");
    counter.inc();
    assert_eq!(counter.get(), 1);

    // ml
    let dataset = clipper::ml::datasets::DatasetSpec::mnist_like()
        .with_train_size(20)
        .with_test_size(5)
        .generate(42);
    assert_eq!(dataset.num_features(), 784);

    // rpc (wire codec round trip, no sockets)
    let msg = clipper::rpc::Message::Heartbeat;
    assert_eq!(msg.wire_size(), msg.encode(1).len());

    // statestore
    let store = clipper::statestore::StateStore::new();
    store.set("k", b"v".to_vec());
    assert_eq!(store.get("k"), Some(b"v".to_vec()));

    // workload
    let arrivals = clipper::workload::ArrivalProcess::Poisson { rate: 1000.0 };
    assert!(arrivals.mean_rate() > 0.0);

    // containers + core types come in through the prelude.
    let _ = ModelId::new("smoke", 1);
    let _ = PolicyKind::Exp3 { eta: 0.1 };
    let _ = DatasetSpec::mnist_like();
}

/// The prelude supports the whole quickstart serving flow in-process:
/// build, register, predict, observe feedback.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn prelude_serves_a_prediction_end_to_end() {
    use clipper::containers::{
        ContainerLogic, LocalContainerTransport, ModelContainer, TimingModel,
    };

    let clipper = Clipper::builder().build();
    let model = ModelId::new("fixed", 1);
    clipper.add_model(model.clone(), Default::default());
    let container = ModelContainer::new(ContainerConfig {
        name: "fixed:0".into(),
        model_name: "fixed".into(),
        model_version: 1,
        logic: ContainerLogic::Fixed(clipper::rpc::message::WireOutput::Class(3)),
        timing: TimingModel::Measured,
        seed: 0,
    });
    clipper
        .add_replica(&model, LocalContainerTransport::new(container))
        .unwrap();
    clipper.register_app(
        AppConfig::new("smoke-app", vec![model])
            .with_policy(PolicyKind::Exp3 { eta: 0.1 })
            .with_slo(Duration::from_millis(50)),
    );

    let input: Input = Arc::new(vec![0.0; 4]);
    let prediction: Prediction = clipper
        .predict("smoke-app", None, input.clone())
        .await
        .unwrap();
    assert_eq!(prediction.output.label(), 3);

    clipper
        .feedback("smoke-app", None, input, Feedback::class(3))
        .await
        .unwrap();
}
