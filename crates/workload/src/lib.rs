//! Workload generation, simulated networks, and experiment reporting.
//!
//! The paper's evaluation machinery, rebuilt:
//!
//! - [`arrivals`]: arrival processes — closed-loop clients, open-loop
//!   Poisson, and bursty on/off streams (§4.3.2's "moderate or bursty
//!   loads");
//! - [`driver`]: load drivers that apply an arrival process to any async
//!   request function and collect a [`driver::LoadReport`] (throughput,
//!   latency distribution, errors);
//! - [`churn`]: config-churn-under-load — open-loop traffic with
//!   scheduled control-plane actions (rollouts, app updates) firing
//!   mid-run, reporting both load and per-action outcomes;
//! - [`simlink`]: bandwidth/latency-simulated network links for the
//!   Figure-6 cluster-scaling study (1 Gbps vs 10 Gbps);
//! - [`report`]: aligned text tables matching the rows/series the paper's
//!   figures report;
//! - [`soak`]: the multi-frontend fan-in soak harness — N in-process
//!   frontends over one statestore and one replica fleet, sustained mixed
//!   workload, and a scripted crash/restart/rollout/fault timeline with a
//!   zero-lost-queries verdict.

pub mod arrivals;
pub mod churn;
pub mod driver;
pub mod report;
pub mod simlink;
pub mod soak;

pub use arrivals::ArrivalProcess;
pub use churn::{http_request, run_open_loop_with_churn, ActionOutcome, ChurnAction, ChurnReport};
pub use driver::{
    run_closed_loop, run_open_loop, run_open_loop_outcomes, LoadReport, RequestOutcome,
};
pub use report::{PhaseOutcome, PhaseRecorder, PhaseStats, Table};
pub use simlink::SimLink;
pub use soak::{run_soak, FrontendStats, SoakAction, SoakEvent, SoakReport, SoakSpec};
