//! Idle-task sweeping: the shared pool must be able to reclaim
//! long-parked tasks whose `JoinHandle` is gone (ROADMAP "executor task
//! accounting"), so soak runs don't accrete the dead tasks of finished
//! phases.
//!
//! A single serial test in its own binary: sweeping and `live_tasks()`
//! are process-global, and a concurrent test's parked tasks must not be
//! reaped by our sweep.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[tokio::test]
async fn sweep_reclaims_detached_parked_tasks_only() {
    // A detached, forever-parked task: the classic leak.
    let leaked_dropped = Arc::new(AtomicBool::new(false));
    let observer = DropObserver(leaked_dropped.clone());
    let leaked = tokio::spawn(async move {
        let _hold = observer;
        std::future::pending::<()>().await;
    });

    // A parked task whose handle is still held: must survive any sweep.
    let (keep_tx, keep_rx) = tokio::sync::oneshot::channel::<u32>();
    let kept = tokio::spawn(async move { keep_rx.await.unwrap() });

    // Let both reach their park.
    tokio::time::sleep(Duration::from_millis(50)).await;
    let live_before = tokio::runtime::live_tasks();
    assert!(live_before >= 2);

    // Nothing is detached yet (both handles alive): sweep is a no-op.
    assert_eq!(tokio::runtime::sweep_idle_tasks(Duration::ZERO), 0);
    assert!(!leaked_dropped.load(Ordering::SeqCst));

    // Detach the leaked task. A sweep with a threshold longer than its
    // park must still spare it...
    drop(leaked);
    assert_eq!(
        tokio::runtime::sweep_idle_tasks(Duration::from_secs(3600)),
        0
    );
    assert!(!leaked_dropped.load(Ordering::SeqCst));

    // ...and a sweep past the threshold reclaims exactly it.
    tokio::time::sleep(Duration::from_millis(30)).await;
    let swept = tokio::runtime::sweep_idle_tasks(Duration::from_millis(10));
    assert_eq!(swept, 1, "exactly the detached parked task is swept");

    // The cancellation lands at the next scheduling point: wait for the
    // future (and its captured state) to actually be dropped.
    for _ in 0..100 {
        if leaked_dropped.load(Ordering::SeqCst) {
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(
        leaked_dropped.load(Ordering::SeqCst),
        "the swept task's future must be dropped"
    );
    assert!(tokio::runtime::live_tasks() < live_before);

    // The kept task still works end-to-end after the sweep.
    keep_tx.send(99).unwrap();
    assert_eq!(kept.await.unwrap(), 99);
}

struct DropObserver(Arc<AtomicBool>);

impl Drop for DropObserver {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}
