//! The prediction cache (§4.2).
//!
//! A function cache for `Predict(m, x) -> y` with two jobs:
//!
//! 1. **Pre-materialization** — frequent queries are answered without
//!    evaluating the model. Eviction is CLOCK (second-chance), the
//!    algorithm the paper cites; selection happens *above* the cache, so
//!    policy changes never invalidate entries.
//! 2. **Join point** — a *pending* entry represents an in-flight
//!    computation. Duplicate concurrent queries, and feedback joins that
//!    arrive shortly after a prediction (§5), attach as waiters instead of
//!    re-evaluating the model — the paper's non-blocking `request`/`fetch`
//!    API.
//!
//! Keys are `(model, 128-bit input hash)`; inputs themselves are not
//! stored. With two independent 64-bit hashes, collisions are negligible
//! at serving scale.

use crate::types::{Input, ModelId, Output};
use clipper_metrics::Counter;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use tokio::sync::oneshot;

/// Cloneable failure delivered to cache waiters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheFillError {
    /// The model evaluation failed (carries a human-readable reason).
    Failed(String),
}

type FillResult = Result<Output, CacheFillError>;

/// 128-bit input fingerprint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    model: ModelId,
    fingerprint: (u64, u64),
}

impl CacheKey {
    /// Build the key for `(model, input)`.
    pub fn new(model: &ModelId, input: &Input) -> Self {
        let mut h1 = DefaultHasher::new();
        0xA5A5_A5A5u64.hash(&mut h1);
        for v in input.iter() {
            v.to_bits().hash(&mut h1);
        }
        let mut h2 = DefaultHasher::new();
        0x5A5A_5A5Au64.hash(&mut h2);
        input.len().hash(&mut h2);
        for v in input.iter().rev() {
            v.to_bits().hash(&mut h2);
        }
        CacheKey {
            model: model.clone(),
            fingerprint: (h1.finish(), h2.finish()),
        }
    }
}

/// Outcome of a cache lookup.
pub enum Lookup {
    /// Value present.
    Hit(Output),
    /// Another caller is computing this entry; await the receiver.
    Pending(oneshot::Receiver<FillResult>),
    /// This caller must trigger the computation, then await the receiver
    /// (the computation's completion flows back through [`PredictionCache::fill`]).
    MustCompute(oneshot::Receiver<FillResult>),
}

struct Slot {
    key: CacheKey,
    value: Output,
    referenced: bool,
}

struct CacheInner {
    /// CLOCK ring. `None` slots are free.
    slots: Vec<Option<Slot>>,
    hand: usize,
    /// key → slot index.
    index: HashMap<CacheKey, usize>,
    /// In-flight computations and their waiters.
    pending: HashMap<CacheKey, Vec<oneshot::Sender<FillResult>>>,
}

/// Concurrent CLOCK-evicted prediction cache. Clone shares the cache.
#[derive(Clone)]
pub struct PredictionCache {
    inner: std::sync::Arc<Mutex<CacheInner>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PredictionCache {
    /// Create a cache holding up to `capacity` completed predictions.
    /// Capacity 0 disables value storage but keeps the pending-join
    /// machinery (in-flight dedup still works).
    pub fn new(capacity: usize) -> Self {
        PredictionCache {
            inner: std::sync::Arc::new(Mutex::new(CacheInner {
                slots: (0..capacity).map(|_| None).collect(),
                hand: 0,
                index: HashMap::new(),
                pending: HashMap::new(),
            })),
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Non-blocking fetch (the paper's `fetch`): value if present.
    pub fn fetch(&self, model: &ModelId, input: &Input) -> Option<Output> {
        let key = CacheKey::new(model, input);
        let mut inner = self.inner.lock();
        if let Some(&slot_idx) = inner.index.get(&key) {
            if let Some(slot) = inner.slots[slot_idx].as_mut() {
                slot.referenced = true;
                self.hits.inc();
                return Some(slot.value.clone());
            }
        }
        self.misses.inc();
        None
    }

    /// The paper's `request`: returns the value, attaches to an in-flight
    /// computation, or instructs the caller to compute.
    pub fn lookup_or_pending(&self, model: &ModelId, input: &Input) -> Lookup {
        let key = CacheKey::new(model, input);
        let mut inner = self.inner.lock();
        if let Some(&slot_idx) = inner.index.get(&key) {
            if let Some(slot) = inner.slots[slot_idx].as_mut() {
                slot.referenced = true;
                self.hits.inc();
                return Lookup::Hit(slot.value.clone());
            }
        }
        self.misses.inc();
        let (tx, rx) = oneshot::channel();
        match inner.pending.get_mut(&key) {
            Some(waiters) => {
                waiters.push(tx);
                Lookup::Pending(rx)
            }
            None => {
                inner.pending.insert(key, vec![tx]);
                Lookup::MustCompute(rx)
            }
        }
    }

    /// Complete an in-flight computation: store the value (on success),
    /// wake every waiter.
    pub fn fill(&self, model: &ModelId, input: &Input, result: FillResult) {
        let key = CacheKey::new(model, input);
        self.fill_key(key, result);
    }

    /// Like [`PredictionCache::fill`] but with a prebuilt key (the queue
    /// dispatcher path, which avoids rehashing inputs).
    pub fn fill_key(&self, key: CacheKey, result: FillResult) {
        let mut inner = self.inner.lock();
        if let Ok(ref value) = result {
            self.store(&mut inner, key.clone(), value.clone());
        }
        if let Some(waiters) = inner.pending.remove(&key) {
            for w in waiters {
                let _ = w.send(result.clone());
            }
        }
    }

    /// CLOCK insert: find a victim slot (second chance), replace it.
    fn store(&self, inner: &mut CacheInner, key: CacheKey, value: Output) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot_idx) = inner.index.get(&key) {
            // Refresh in place.
            if let Some(slot) = inner.slots[slot_idx].as_mut() {
                slot.value = value;
                slot.referenced = true;
            }
            return;
        }
        // Advance the hand until a free slot or an unreferenced victim.
        loop {
            let hand = inner.hand;
            inner.hand = (inner.hand + 1) % self.capacity;
            match inner.slots[hand].as_mut() {
                None => {
                    inner.slots[hand] = Some(Slot {
                        key: key.clone(),
                        value,
                        referenced: true,
                    });
                    inner.index.insert(key, hand);
                    return;
                }
                Some(slot) if slot.referenced => {
                    slot.referenced = false; // second chance
                }
                Some(slot) => {
                    let old_key = slot.key.clone();
                    inner.index.remove(&old_key);
                    self.evictions.inc();
                    inner.slots[hand] = Some(Slot {
                        key: key.clone(),
                        value,
                        referenced: true,
                    });
                    inner.index.insert(key, hand);
                    return;
                }
            }
        }
    }

    /// (hits, misses, evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits.get(), self.misses.get(), self.evictions.get())
    }

    /// Number of completed entries currently stored.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// Whether the cache holds no completed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of in-flight computations.
    pub fn pending_len(&self) -> usize {
        self.inner.lock().pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn input(vals: &[f32]) -> Input {
        Arc::new(vals.to_vec())
    }

    fn model(n: &str) -> ModelId {
        ModelId::new(n, 1)
    }

    #[test]
    fn fetch_miss_then_fill_then_hit() {
        let cache = PredictionCache::new(4);
        let m = model("m");
        let x = input(&[1.0, 2.0]);
        assert!(cache.fetch(&m, &x).is_none());
        cache.fill(&m, &x, Ok(Output::Class(3)));
        assert_eq!(cache.fetch(&m, &x), Some(Output::Class(3)));
        let (hits, misses, _) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[tokio::test]
    async fn must_compute_then_waiters_join() {
        let cache = PredictionCache::new(4);
        let m = model("m");
        let x = input(&[5.0]);
        let first = cache.lookup_or_pending(&m, &x);
        let rx1 = match first {
            Lookup::MustCompute(rx) => rx,
            _ => panic!("first lookup must be MustCompute"),
        };
        // Second lookup joins as a waiter.
        let rx2 = match cache.lookup_or_pending(&m, &x) {
            Lookup::Pending(rx) => rx,
            _ => panic!("second lookup must be Pending"),
        };
        assert_eq!(cache.pending_len(), 1);
        cache.fill(&m, &x, Ok(Output::Class(7)));
        assert_eq!(rx1.await.unwrap().unwrap(), Output::Class(7));
        assert_eq!(rx2.await.unwrap().unwrap(), Output::Class(7));
        assert_eq!(cache.pending_len(), 0);
        // Third lookup hits.
        assert!(matches!(cache.lookup_or_pending(&m, &x), Lookup::Hit(_)));
    }

    #[tokio::test]
    async fn fill_error_propagates_and_is_not_cached() {
        let cache = PredictionCache::new(4);
        let m = model("m");
        let x = input(&[9.0]);
        let rx = match cache.lookup_or_pending(&m, &x) {
            Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        cache.fill(&m, &x, Err(CacheFillError::Failed("boom".into())));
        assert!(rx.await.unwrap().is_err());
        assert!(cache.fetch(&m, &x).is_none(), "errors are not cached");
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let cache = PredictionCache::new(4);
        let x = input(&[1.0]);
        cache.fill(&model("a"), &x, Ok(Output::Class(1)));
        cache.fill(&model("b"), &x, Ok(Output::Class(2)));
        assert_eq!(cache.fetch(&model("a"), &x), Some(Output::Class(1)));
        assert_eq!(cache.fetch(&model("b"), &x), Some(Output::Class(2)));
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let cache = PredictionCache::new(2);
        let m = model("m");
        let (a, b, c) = (input(&[1.0]), input(&[2.0]), input(&[3.0]));
        cache.fill(&m, &a, Ok(Output::Class(1)));
        cache.fill(&m, &b, Ok(Output::Class(2)));
        // Touch `a` so it has its reference bit set; `b`'s gets cleared by
        // the first hand sweep and `b` becomes the victim.
        cache.fetch(&m, &a);
        cache.fill(&m, &c, Ok(Output::Class(3)));
        assert_eq!(cache.len(), 2);
        assert!(cache.fetch(&m, &c).is_some(), "new entry stored");
        let survivors = [cache.fetch(&m, &a).is_some(), cache.fetch(&m, &b).is_some()];
        assert_eq!(
            survivors.iter().filter(|&&s| s).count(),
            1,
            "exactly one old entry survives"
        );
        let (_, _, evictions) = cache.stats();
        assert_eq!(evictions, 1);
    }

    #[test]
    fn refresh_same_key_does_not_grow() {
        let cache = PredictionCache::new(2);
        let m = model("m");
        let x = input(&[1.0]);
        cache.fill(&m, &x, Ok(Output::Class(1)));
        cache.fill(&m, &x, Ok(Output::Class(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.fetch(&m, &x), Some(Output::Class(2)));
    }

    #[test]
    fn zero_capacity_joins_but_never_stores() {
        let cache = PredictionCache::new(0);
        let m = model("m");
        let x = input(&[1.0]);
        assert!(matches!(
            cache.lookup_or_pending(&m, &x),
            Lookup::MustCompute(_)
        ));
        cache.fill(&m, &x, Ok(Output::Class(1)));
        assert!(cache.fetch(&m, &x).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_under_churn_keeps_capacity_bound() {
        let cache = PredictionCache::new(8);
        let m = model("m");
        for i in 0..100 {
            let x = input(&[i as f32]);
            cache.fill(&m, &x, Ok(Output::Class(i)));
        }
        assert_eq!(cache.len(), 8);
        let (_, _, evictions) = cache.stats();
        assert_eq!(evictions, 92);
    }
}
