//! Throughput meters.
//!
//! A [`Meter`] measures event rates (queries per second) two ways:
//! a windowed instantaneous rate used by experiment harnesses, and the
//! lifetime mean rate used in summary tables.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Exponential decay factor per tick for the one-second EWMA rate.
/// alpha = 1 - exp(-1/5) gives a ~5-second effective window.
const EWMA_ALPHA: f64 = 0.18126924692201818;

/// A concurrent event-rate meter.
#[derive(Clone)]
pub struct Meter {
    inner: Arc<MeterInner>,
}

struct MeterInner {
    start: Instant,
    count: AtomicU64,
    window: Mutex<Window>,
}

struct Window {
    last_tick: Instant,
    tick_count: u64,
    ewma_rate: f64,
    initialized: bool,
}

impl Default for Meter {
    fn default() -> Self {
        Self::new()
    }
}

impl Meter {
    /// Create a meter; the lifetime rate clock starts now.
    pub fn new() -> Self {
        let now = Instant::now();
        Meter {
            inner: Arc::new(MeterInner {
                start: now,
                count: AtomicU64::new(0),
                window: Mutex::new(Window {
                    last_tick: now,
                    tick_count: 0,
                    ewma_rate: 0.0,
                    initialized: false,
                }),
            }),
        }
    }

    /// Record one event.
    pub fn mark(&self) {
        self.mark_n(1);
    }

    /// Record `n` events (e.g. a whole batch completing).
    pub fn mark_n(&self, n: u64) {
        self.inner.count.fetch_add(n, Ordering::Relaxed);
        let mut w = self.inner.window.lock();
        w.tick_count += n;
        let elapsed = w.last_tick.elapsed();
        if elapsed.as_secs_f64() >= 1.0 {
            let rate = w.tick_count as f64 / elapsed.as_secs_f64();
            w.ewma_rate = if w.initialized {
                w.ewma_rate + EWMA_ALPHA * (rate - w.ewma_rate)
            } else {
                rate
            };
            w.initialized = true;
            w.tick_count = 0;
            w.last_tick = Instant::now();
        }
    }

    /// Total events since creation.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Mean rate over the meter's whole lifetime, events/second.
    pub fn mean_rate(&self) -> f64 {
        let secs = self.inner.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count() as f64 / secs
        }
    }

    /// Smoothed recent rate (EWMA over ~5 s of one-second ticks). Falls back
    /// to the lifetime mean until the first tick completes.
    pub fn rate(&self) -> f64 {
        let w = self.inner.window.lock();
        if w.initialized {
            w.ewma_rate
        } else {
            drop(w);
            self.mean_rate()
        }
    }
}

impl std::fmt::Debug for Meter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Meter")
            .field("count", &self.count())
            .field("mean_rate", &self.mean_rate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counts_events() {
        let m = Meter::new();
        m.mark();
        m.mark_n(9);
        assert_eq!(m.count(), 10);
    }

    #[test]
    fn mean_rate_reflects_elapsed_time() {
        let m = Meter::new();
        m.mark_n(100);
        std::thread::sleep(Duration::from_millis(50));
        let r = m.mean_rate();
        // 100 events over >= 50 ms: rate must be positive and below 100/0.05.
        assert!(r > 0.0 && r <= 100.0 / 0.05, "rate={r}");
    }

    #[test]
    fn rate_falls_back_to_mean_before_first_tick() {
        let m = Meter::new();
        m.mark_n(10);
        assert!((m.rate() - m.mean_rate()).abs() < 1e-6 || m.rate() > 0.0);
    }

    #[test]
    fn shared_across_clones() {
        let m = Meter::new();
        let m2 = m.clone();
        m.mark();
        m2.mark();
        assert_eq!(m.count(), 2);
    }
}
