//! Figure 11 — Clipper vs TensorFlow Serving.
//!
//! Three simulated GPU conv nets (MNIST / CIFAR / ImageNet regimes) served
//! three ways:
//!
//! - **TF-Serving**: tightly coupled in-process baseline, hand-tuned
//!   static batch (512/128/16), timeout dispatch;
//! - **Clipper TF-C++**: the full modular stack — adaptive batching,
//!   prediction cache, selection layer — with containers behind the *real
//!   TCP RPC system*;
//! - **Clipper TF-Python**: same, but the container pays a per-wave
//!   interpreter/serialization tax (~17%), as the paper measured for the
//!   Python container API.
//!
//! Reports peak throughput, mean/P99 latency, and the mean-latency
//! decomposition (queue vs predict vs other).

use clipper_baseline::{TfServingLike, TfsConfig, TfsMetrics};
use clipper_bench::{distinct_input, phase_duration};
use clipper_containers::{
    fig11_model, spawn_tcp_container, ContainerConfig, ContainerLogic, Fig11Model, GpuDevice,
    ModelContainer, TimingModel,
};
use clipper_core::{AppConfig, BatchConfig, BatchStrategy, Clipper, ModelId, PolicyKind};
use clipper_metrics::{MetricValue, Registry};
use clipper_rpc::message::WireOutput;
use clipper_rpc::server::RpcServer;
use clipper_workload::report::fmt_qps;
use clipper_workload::{run_closed_loop, Table};
use std::sync::Arc;
use std::time::Duration;

fn gpu_container(model: Fig11Model, python_tax: bool, name: &str) -> Arc<ModelContainer> {
    let mut spec = fig11_model(model);
    if python_tax {
        // The Python API costs 15-18% of throughput in the paper: model it
        // as a proportionally slower wave.
        spec.wave_time = spec.wave_time.mul_f64(1.17);
    }
    ModelContainer::new(ContainerConfig {
        name: name.to_string(),
        model_name: name.split(':').next().unwrap_or(name).to_string(),
        model_version: 1,
        logic: ContainerLogic::Fixed(WireOutput::Class(0)),
        timing: TimingModel::Gpu(GpuDevice::new(spec)),
        seed: 5,
    })
}

struct RunResult {
    throughput: f64,
    mean_ms: f64,
    p99_ms: f64,
    queue_ms: f64,
    predict_ms: f64,
}

async fn run_tfs(model: Fig11Model) -> RunResult {
    let registry = Registry::new();
    let metrics = TfsMetrics::register(&registry, "tfs");
    let server = TfServingLike::spawn(
        gpu_container(model, false, "tfs:0"),
        TfsConfig {
            batch_size: model.tuned_batch(),
            batch_timeout: Duration::from_millis(2),
            ..Default::default()
        },
        metrics.clone(),
    );
    let clients = model.tuned_batch() * 3;
    let dim = model.input_dim();
    let s = server.clone();
    run_closed_loop(clients, phase_duration() / 2, move |c, q| {
        let s = s.clone();
        async move {
            s.predict((*distinct_input(c, q, dim)).clone())
                .await
                .is_ok()
        }
    })
    .await;
    let s = server.clone();
    let report = run_closed_loop(clients, phase_duration(), move |c, q| {
        let s = s.clone();
        async move {
            s.predict((*distinct_input(c, 1 << 20 | q, dim)).clone())
                .await
                .is_ok()
        }
    })
    .await;
    let queue_ms = metrics.queue_us.snapshot().mean() / 1_000.0;
    let predict_ms = metrics.predict_us.snapshot().mean() / 1_000.0;
    RunResult {
        throughput: report.throughput(),
        mean_ms: report.mean_ms(),
        p99_ms: report.p99_ms(),
        queue_ms,
        predict_ms,
    }
}

async fn run_clipper(model: Fig11Model, python_tax: bool) -> RunResult {
    let clipper = Clipper::builder().disable_cache().build();
    let mut rpc = RpcServer::bind("127.0.0.1:0").await.expect("rpc binds");
    let container = gpu_container(model, python_tax, "gpu:0");
    spawn_tcp_container(rpc.local_addr(), container);
    let (info, handle) = rpc.next_container().await.expect("container registers");
    let id = ModelId::new(&info.model_name, 1);
    clipper.add_model(
        id.clone(),
        BatchConfig {
            strategy: BatchStrategy::Aimd {
                step: (model.tuned_batch() / 4).max(2) as f64,
                backoff: 0.9,
            },
            // The adaptive target: enough budget for one full wave plus
            // pipelining slack, mirroring the paper's peak-throughput tuning.
            slo: fig11_model(model).wave_time.mul_f64(2.5),
            batch_wait_timeout: Duration::from_millis(2),
            pipeline_depth: 2,
            max_batch_cap: model.tuned_batch(),
            ..Default::default()
        },
    );
    clipper.add_replica(&id, Arc::new(handle)).expect("replica");
    clipper.register_app(
        AppConfig::new("bench", vec![id.clone()])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(3_000)),
    );

    let clients = model.tuned_batch() * 3;
    let dim = model.input_dim();
    let c = clipper.clone();
    run_closed_loop(clients, phase_duration(), move |client, q| {
        let clipper = c.clone();
        async move {
            clipper
                .predict("bench", None, distinct_input(client, q, dim))
                .await
                .is_ok()
        }
    })
    .await;
    let c = clipper.clone();
    let report = run_closed_loop(clients, phase_duration(), move |client, q| {
        let clipper = c.clone();
        async move {
            clipper
                .predict("bench", None, distinct_input(client, 1 << 20 | q, dim))
                .await
                .is_ok()
        }
    })
    .await;

    // Latency decomposition from the queue telemetry.
    let snap = clipper.registry().snapshot();
    let hist_mean = |suffix: &str| -> f64 {
        snap.values
            .iter()
            .find(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| match v {
                MetricValue::Histogram { mean, .. } => *mean,
                _ => 0.0,
            })
            .unwrap_or(0.0)
    };
    RunResult {
        throughput: report.throughput(),
        mean_ms: report.mean_ms(),
        p99_ms: report.p99_ms(),
        queue_ms: (hist_mean("/queue_us") + hist_mean("/remote_queue_us")) / 1_000.0,
        predict_ms: hist_mean("/predict_us") / 1_000.0,
    }
}

#[tokio::main(flavor = "multi_thread", worker_threads = 8)]
async fn main() {
    println!("== Figure 11: TensorFlow Serving Comparison ==\n");
    let mut table = Table::new(&[
        "model",
        "system",
        "throughput (qps)",
        "mean lat (ms)",
        "p99 (ms)",
        "queue (ms)",
        "predict (ms)",
    ]);

    for model in Fig11Model::all() {
        let tfs = run_tfs(model).await;
        let cpp = run_clipper(model, false).await;
        let py = run_clipper(model, true).await;
        for (system, r) in [
            ("TF-Serving", &tfs),
            ("Clipper TF-C++", &cpp),
            ("Clipper TF-Python", &py),
        ] {
            table.row(&[
                model.label().to_string(),
                system.to_string(),
                fmt_qps(r.throughput),
                format!("{:.0}", r.mean_ms),
                format!("{:.0}", r.p99_ms),
                format!("{:.0}", r.queue_ms),
                format!("{:.0}", r.predict_ms),
            ]);
        }
    }
    table.print();
    println!("\npaper reference (throughput): MNIST 23138/22269/19537 · CIFAR 5519/5472/4571 · ImageNet 56/52/47");
    println!("shape: Clipper C++ ≈ TF-Serving; Python container ~15-18% below; latency dominated by queue+predict");
}
