//! The model abstraction layer (§4): cache over adaptive batching over
//! replicated container transports.
//!
//! `predict(model, x)` resolves through three stages:
//!
//! 1. **prediction cache** — hit returns immediately; a miss either joins
//!    an in-flight computation or claims responsibility for one;
//! 2. **replica choice** — round-robin over the model's healthy replicas
//!    (each with independently tuned batching, §4.4.1);
//! 3. **batching queue** — the replica's dispatcher forms batches and
//!    ships them over the transport.
//!
//! The layer also tracks each model's *running default output* — the
//! substitution value used when straggler mitigation renders a prediction
//! without that model (§5.2.2).

pub use crate::batching::queue::PredictError;
use crate::batching::queue::{
    spawn_replica_queue, QueueConfig, QueueItem, QueueMetrics, ReplicaQueue, ReplySink,
};
use crate::cache::{CacheKey, CacheStats, Lookup, PredictionCache};
use crate::types::{Input, ModelId, Output};
use clipper_metrics::Registry;
use clipper_rpc::transport::BatchTransport;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::sync::oneshot;

/// Per-model batching configuration (applied to each replica's queue).
pub type BatchConfig = QueueConfig;

/// Running summary of a model's outputs, used to substitute for missing
/// predictions under straggler mitigation. For class outputs the default
/// is the modal label; for score outputs the running mean vector.
#[derive(Default)]
struct DefaultTracker {
    label_counts: HashMap<u32, u64>,
    score_sums: Vec<f64>,
    score_count: u64,
}

impl DefaultTracker {
    fn record(&mut self, out: &Output) {
        match out {
            Output::Class(c) => {
                *self.label_counts.entry(*c).or_insert(0) += 1;
            }
            Output::Scores(s) => {
                if self.score_sums.len() != s.len() {
                    self.score_sums = vec![0.0; s.len()];
                    self.score_count = 0;
                }
                for (acc, &v) in self.score_sums.iter_mut().zip(s.iter()) {
                    *acc += v as f64;
                }
                self.score_count += 1;
                *self.label_counts.entry(out.label()).or_insert(0) += 1;
            }
            Output::Labels(_) => {
                // Sequences have no meaningful average; straggler handling
                // drops missing transcriptions instead.
            }
        }
    }

    fn default_output(&self) -> Option<Output> {
        if self.score_count > 0 {
            let mean: Vec<f32> = self
                .score_sums
                .iter()
                .map(|&s| (s / self.score_count as f64) as f32)
                .collect();
            return Some(Output::Scores(mean));
        }
        self.label_counts
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(&label, _)| Output::Class(label))
    }
}

struct Replica {
    queue: Arc<ReplicaQueue>,
    transport: Arc<dyn BatchTransport>,
}

struct ModelHandle {
    id: ModelId,
    cfg: QueueConfig,
    replicas: RwLock<Vec<Replica>>,
    next_replica: AtomicUsize,
    defaults: Mutex<DefaultTracker>,
}

/// The model abstraction layer.
pub struct ModelAbstractionLayer {
    cache: PredictionCache,
    models: RwLock<HashMap<ModelId, Arc<ModelHandle>>>,
    registry: Registry,
}

impl ModelAbstractionLayer {
    /// Create a layer with a prediction cache of `cache_capacity` entries.
    ///
    /// Cache counters are registered as *polled* metrics: the registry
    /// reads the cache's relaxed per-shard atomics at snapshot time, so
    /// serving never pays for metric bookkeeping beyond the shard-local
    /// increments.
    pub fn new(cache_capacity: usize, registry: Registry) -> Arc<Self> {
        let cache = PredictionCache::new(cache_capacity);
        fn poll(
            registry: &Registry,
            name: &str,
            cache: &PredictionCache,
            read: fn(CacheStats) -> u64,
        ) {
            let cache = cache.clone();
            registry.poll_counter(name, move || read(cache.stats()));
        }
        poll(&registry, "cache/hits", &cache, |s| s.hits);
        poll(&registry, "cache/misses", &cache, |s| s.misses);
        poll(&registry, "cache/evictions", &cache, |s| s.evictions);
        poll(&registry, "cache/pending_joins", &cache, |s| {
            s.pending_joins
        });
        Arc::new(ModelAbstractionLayer {
            cache,
            models: RwLock::new(HashMap::new()),
            registry,
        })
    }

    /// Register a model with its batching configuration. Idempotent: a
    /// second registration with the same id keeps the original.
    pub fn add_model(&self, id: ModelId, cfg: BatchConfig) {
        let mut models = self.models.write();
        models.entry(id.clone()).or_insert_with(|| {
            Arc::new(ModelHandle {
                id,
                cfg,
                replicas: RwLock::new(Vec::new()),
                next_replica: AtomicUsize::new(0),
                defaults: Mutex::new(DefaultTracker::default()),
            })
        });
    }

    /// Attach a container replica to a registered model. Returns the
    /// replica's queue id.
    pub fn add_replica(
        &self,
        id: &ModelId,
        transport: Arc<dyn BatchTransport>,
    ) -> Result<String, PredictError> {
        let handle = self
            .models
            .read()
            .get(id)
            .cloned()
            .ok_or(PredictError::ModelUnknown)?;
        let mut replicas = handle.replicas.write();
        let idx = replicas.len();
        let queue_id = format!("{}:{}", handle.id, idx);
        let metrics = QueueMetrics::register(&self.registry, &format!("queue/{queue_id}"));
        let queue = spawn_replica_queue(
            queue_id.clone(),
            transport.clone(),
            handle.cfg.clone(),
            metrics,
        );
        replicas.push(Replica { queue, transport });
        Ok(queue_id)
    }

    /// Remove all replicas of a model (failure injection / decommission).
    pub fn remove_replicas(&self, id: &ModelId) {
        if let Some(handle) = self.models.read().get(id) {
            let mut replicas = handle.replicas.write();
            for r in replicas.drain(..) {
                r.queue.shutdown();
            }
        }
    }

    /// Registered model ids.
    pub fn models(&self) -> Vec<ModelId> {
        self.models.read().keys().cloned().collect()
    }

    /// Number of live replicas for a model.
    pub fn replica_count(&self, id: &ModelId) -> usize {
        self.models
            .read()
            .get(id)
            .map_or(0, |h| h.replicas.read().len())
    }

    /// The shared prediction cache.
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// The metrics registry this layer reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The model's substitution output for straggler mitigation (§5.2.2),
    /// if the model has produced any outputs yet.
    pub fn default_output(&self, id: &ModelId) -> Option<Output> {
        self.models
            .read()
            .get(id)
            .and_then(|h| h.defaults.lock().default_output())
    }

    /// Evaluate `Predict(model, input)`, using the cache when `use_cache`.
    ///
    /// The cache key is computed exactly once, at the top, and threaded by
    /// value through the lookup, the queue's reply sink, and the failure
    /// path — the input is never hashed a second time. A cache hit
    /// touches only its shard: the model table is consulted lazily, after
    /// the lookup, so hits never contend on the shared `models` lock.
    pub async fn predict(
        &self,
        model: &ModelId,
        input: Input,
        use_cache: bool,
    ) -> Result<Output, PredictError> {
        let result = if use_cache {
            let key = CacheKey::new(model, &input);
            match self.cache.lookup_or_pending(key) {
                Lookup::Hit(out) => return Ok(out),
                Lookup::Pending(rx) => await_fill(rx).await,
                Lookup::MustCompute(rx) => {
                    let sink = ReplySink::Cache {
                        cache: self.cache.clone(),
                        key,
                    };
                    let enqueued = self
                        .handle(model)
                        .and_then(|handle| enqueue(&handle, input.clone(), sink));
                    if let Err(e) = enqueued {
                        // Nobody will ever fill the pending entry; fail it
                        // ourselves so waiters see the error.
                        self.cache.fail_pending(key, e.to_string());
                        return Err(e);
                    }
                    await_fill(rx).await
                }
            }
        } else {
            let (tx, rx) = oneshot::channel();
            let handle = self.handle(model)?;
            enqueue(&handle, input, ReplySink::Direct(tx))?;
            match rx.await {
                Ok(r) => r,
                Err(_) => Err(PredictError::Failed("reply channel dropped".into())),
            }
        };

        if let Ok(ref out) = result {
            // Fresh predictions feed the model's running default (§5.2.2);
            // this is off the hit path, which returned above.
            if let Some(handle) = self.models.read().get(model) {
                handle.defaults.lock().record(out);
            }
        }
        result
    }

    fn handle(&self, model: &ModelId) -> Result<Arc<ModelHandle>, PredictError> {
        self.models
            .read()
            .get(model)
            .cloned()
            .ok_or(PredictError::ModelUnknown)
    }
}

async fn await_fill(
    rx: oneshot::Receiver<Result<Output, crate::cache::CacheFillError>>,
) -> Result<Output, PredictError> {
    match rx.await {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(crate::cache::CacheFillError::Failed(m))) => Err(PredictError::Failed(m)),
        Err(_) => Err(PredictError::Failed("cache fill dropped".into())),
    }
}

/// Pick the next healthy replica round-robin and submit.
fn enqueue(handle: &ModelHandle, input: Input, sink: ReplySink) -> Result<(), PredictError> {
    let replicas = handle.replicas.read();
    if replicas.is_empty() {
        return Err(PredictError::NoReplicas);
    }
    let start = handle.next_replica.fetch_add(1, Ordering::Relaxed);
    for offset in 0..replicas.len() {
        let r = &replicas[(start + offset) % replicas.len()];
        if r.transport.is_healthy() {
            r.queue.submit(QueueItem {
                input,
                sink,
                enqueued: Instant::now(),
            });
            return Ok(());
        }
    }
    Err(PredictError::NoReplicas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;
    use std::sync::atomic::AtomicU64;

    fn echo() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("echo", |inputs| {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|x| WireOutput::Class(x[0] as u32))
                    .collect(),
                queue_us: 0,
                compute_us: 1,
            })
        }))
    }

    fn layer() -> Arc<ModelAbstractionLayer> {
        ModelAbstractionLayer::new(64, Registry::new())
    }

    #[tokio::test]
    async fn predict_through_cache_and_queue() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        let out = mal.predict(&m, Arc::new(vec![7.0]), true).await.unwrap();
        assert_eq!(out, Output::Class(7));
        // Second call: cache hit (no new evaluation).
        let out2 = mal.predict(&m, Arc::new(vec![7.0]), true).await.unwrap();
        assert_eq!(out2, Output::Class(7));
        assert!(mal.cache().stats().hits >= 1);
    }

    #[tokio::test]
    async fn unknown_model_is_an_error() {
        let mal = layer();
        let err = mal
            .predict(&ModelId::new("ghost", 1), Arc::new(vec![1.0]), true)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::ModelUnknown);
    }

    #[tokio::test]
    async fn model_without_replicas_errors() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
    }

    #[tokio::test]
    async fn cache_pending_failure_wakes_waiters_with_error() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        // No replicas: the MustCompute path must fail-fill the pending
        // entry so the cache doesn't wedge.
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), true)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
        assert_eq!(mal.cache().pending_len(), 0, "no stuck pending entries");
    }

    #[tokio::test]
    async fn round_robin_spreads_across_replicas() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(
            m.clone(),
            BatchConfig {
                strategy: crate::batching::BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));
        for counter in [c1.clone(), c2.clone()] {
            let t: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("counted", move |inputs| {
                counter.fetch_add(inputs.len() as u64, Ordering::Relaxed);
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }));
            mal.add_replica(&m, t).unwrap();
        }
        assert_eq!(mal.replica_count(&m), 2);
        for i in 0..20 {
            // Distinct inputs so the cache doesn't collapse them.
            mal.predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .unwrap();
        }
        let (n1, n2) = (c1.load(Ordering::Relaxed), c2.load(Ordering::Relaxed));
        assert_eq!(n1 + n2, 20);
        assert!(n1 >= 5 && n2 >= 5, "round robin should spread: {n1}/{n2}");
    }

    #[tokio::test]
    async fn unhealthy_replicas_are_skipped() {
        struct Dead;
        impl BatchTransport for Dead {
            fn predict_batch(
                &self,
                _inputs: Vec<Vec<f32>>,
            ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
                Box::pin(async { Err(clipper_rpc::RpcError::ConnectionClosed) })
            }
            fn id(&self) -> String {
                "dead".into()
            }
            fn is_healthy(&self) -> bool {
                false
            }
        }
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, Arc::new(Dead)).unwrap();
        mal.add_replica(&m, echo()).unwrap();
        // All queries should route to the healthy replica.
        for i in 0..10 {
            let out = mal
                .predict(&m, Arc::new(vec![i as f32]), false)
                .await
                .unwrap();
            assert_eq!(out, Output::Class(i as u32));
        }
    }

    #[tokio::test]
    async fn default_output_tracks_modal_label() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        // 3 queries answer Class(5), 1 answers Class(2).
        for v in [5.0, 5.0, 5.0, 2.0] {
            // distinct inputs: add small noise in second element
            mal.predict(&m, Arc::new(vec![v, rand::random::<f32>()]), false)
                .await
                .unwrap();
        }
        assert_eq!(mal.default_output(&m), Some(Output::Class(5)));
    }

    #[tokio::test]
    async fn remove_replicas_causes_no_replica_errors() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        mal.add_replica(&m, echo()).unwrap();
        mal.remove_replicas(&m);
        assert_eq!(mal.replica_count(&m), 0);
        let err = mal
            .predict(&m, Arc::new(vec![1.0]), false)
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::NoReplicas);
    }

    #[tokio::test]
    async fn concurrent_identical_queries_collapse_to_one_evaluation() {
        let mal = layer();
        let m = ModelId::new("m", 1);
        mal.add_model(m.clone(), BatchConfig::default());
        let evals = Arc::new(AtomicU64::new(0));
        let e2 = evals.clone();
        let t: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("slowcount", move |inputs| {
            e2.fetch_add(inputs.len() as u64, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(20));
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(1); inputs.len()],
                queue_us: 0,
                compute_us: 0,
            })
        }));
        use std::time::Duration;
        mal.add_replica(&m, t).unwrap();
        let input: Input = Arc::new(vec![42.0]);
        let mut tasks = Vec::new();
        for _ in 0..16 {
            let mal = mal.clone();
            let m = m.clone();
            let input = input.clone();
            tasks.push(tokio::spawn(async move {
                mal.predict(&m, input, true).await.unwrap()
            }));
        }
        for t in tasks {
            assert_eq!(t.await.unwrap(), Output::Class(1));
        }
        assert_eq!(
            evals.load(Ordering::Relaxed),
            1,
            "16 identical concurrent queries must evaluate once"
        );
    }
}
