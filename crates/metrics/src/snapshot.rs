//! Serializable snapshots of registry state.

use serde::Serialize;
use std::collections::BTreeMap;

/// The value of a single metric at snapshot time.
#[derive(Clone, Debug, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter {
        /// Current count.
        value: u64,
    },
    /// Instantaneous gauge value.
    Gauge {
        /// Current value.
        value: i64,
    },
    /// Event meter: total count plus smoothed and lifetime rates.
    Meter {
        /// Total events recorded.
        count: u64,
        /// Smoothed recent rate (events/s).
        rate: f64,
        /// Lifetime mean rate (events/s).
        mean_rate: f64,
    },
    /// Histogram summary (values in microseconds by convention).
    Histogram {
        /// Number of samples.
        count: u64,
        /// Arithmetic mean.
        mean: f64,
        /// Median.
        p50: u64,
        /// 95th percentile.
        p95: u64,
        /// 99th percentile.
        p99: u64,
        /// Exact observed maximum.
        max: u64,
        /// Exact observed minimum.
        min: u64,
    },
}

/// A snapshot of every metric in a [`crate::Registry`].
#[derive(Clone, Debug, Serialize)]
pub struct RegistrySnapshot {
    /// Metric values keyed by registered name.
    pub values: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// Render as a human-readable multi-line report (used by examples and
    /// the `/metrics` text endpoint).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.values {
            match v {
                MetricValue::Counter { value } => {
                    out.push_str(&format!("{name}: {value}\n"));
                }
                MetricValue::Gauge { value } => {
                    out.push_str(&format!("{name}: {value}\n"));
                }
                MetricValue::Meter {
                    count,
                    rate,
                    mean_rate,
                } => {
                    out.push_str(&format!(
                        "{name}: count={count} rate={rate:.1}/s mean={mean_rate:.1}/s\n"
                    ));
                }
                MetricValue::Histogram {
                    count,
                    mean,
                    p50,
                    p95,
                    p99,
                    max,
                    ..
                } => {
                    out.push_str(&format!(
                        "{name}: count={count} mean={mean:.1} p50={p50} p95={p95} p99={p99} max={max}\n"
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_report_contains_all_metrics() {
        let mut values = BTreeMap::new();
        values.insert("a".into(), MetricValue::Counter { value: 3 });
        values.insert(
            "b".into(),
            MetricValue::Histogram {
                count: 1,
                mean: 5.0,
                p50: 5,
                p95: 5,
                p99: 5,
                max: 5,
                min: 5,
            },
        );
        let snap = RegistrySnapshot { values };
        let text = snap.to_text();
        assert!(text.contains("a: 3"));
        assert!(text.contains("p99=5"));
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let mut values = BTreeMap::new();
        values.insert("qps".into(), MetricValue::Gauge { value: 42 });
        let snap = RegistrySnapshot { values };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"qps\""));
        assert!(json.contains("42"));
    }
}
