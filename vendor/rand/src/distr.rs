//! The distribution abstraction (`rand::distr` in rand 0.9).

use crate::RngCore;

/// A sampling distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The standard uniform distribution (unit interval for floats).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardUniform;

impl<T: crate::StandardSample> Distribution<T> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: crate::SampleUniform + Copy + PartialOrd> Uniform<T> {
    /// Build a sampler for `[low, high)`.
    pub fn new(low: T, high: T) -> Result<Self, UniformError> {
        if low < high {
            Ok(Uniform { low, high })
        } else {
            Err(UniformError)
        }
    }
}

impl<T: crate::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.low, self.high)
    }
}

/// Error constructing a [`Uniform`] from an empty range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformError;

impl std::fmt::Display for UniformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "empty uniform range")
    }
}

impl std::error::Error for UniformError {}
