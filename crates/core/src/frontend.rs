//! Application-facing HTTP frontend: the data plane (§3's "REST API")
//! plus the versioned `/api/v1/` control plane (§3, §6.3).
//!
//! A deliberately small HTTP/1.1 server on tokio — request line, headers,
//! `Content-Length` body — routed through a typed `Route` parser
//! (method + path segments, no string-prefix matching):
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /api/v1/apps/{app}/predict` | serve one prediction |
//! | `POST /api/v1/apps/{app}/update`  | feedback (§5) |
//! | `GET/POST /api/v1/apps`, `GET/PATCH/DELETE /api/v1/apps/{app}` | app lifecycle |
//! | `GET/POST /api/v1/models`, `GET /api/v1/models/{name}` | model catalog |
//! | `POST /api/v1/models/{name}/rollout` / `.../rollback` | version rollout |
//! | `GET /metrics`, `GET /health` | telemetry / liveness |
//!
//! Legacy `POST /apps/{app}/predict|update` and `GET /models` remain as
//! aliases onto the v1 handlers.
//!
//! Every error response is a serde-serialized [`ErrorBody`] carrying the
//! taxonomy's stable code and canonical status — an unknown app is a 404,
//! shed load a 429 with `"shed": true`, a timeout a 504 — and messages
//! containing quotes or backslashes stay valid JSON.
//!
//! Each accepted connection is served on its own spawned task, so a slow
//! or idle client never blocks the accept loop. Connections are
//! keep-alive; request heads are read in buffered chunks (scanning for
//! `\r\n\r\n`, with overread bytes carried into the body and the next
//! pipelined request), never byte-at-a-time.

use crate::api::{
    app_views_to_json, model_views_to_json, snapshot_to_json, ApiError, AppPatch, AppSpec, AppView,
    ErrorBody, JsonOutput, ModelSpec, RolloutRequest,
};
use crate::clipper::Clipper;
use crate::types::{Feedback, ModelId};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Maximum accepted request body (4 MiB).
const MAX_BODY: usize = 4 << 20;
/// Maximum accepted request head (64 KiB).
const MAX_HEAD: usize = 64 * 1024;
/// Socket read granularity.
const READ_CHUNK: usize = 8 * 1024;

/// A running HTTP frontend.
pub struct HttpFrontend {
    local_addr: SocketAddr,
    task: tokio::task::JoinHandle<()>,
}

impl HttpFrontend {
    /// Bind to `addr` and serve `clipper` in the background.
    pub async fn bind(addr: &str, clipper: Clipper) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let task = tokio::spawn(async move {
            // One spawned task per connection: a stalled request on one
            // connection never holds up accepting the next.
            while let Ok((conn, _)) = listener.accept().await {
                let clipper = clipper.clone();
                tokio::spawn(async move {
                    let _ = serve_connection(conn, clipper).await;
                });
            }
        });
        Ok(HttpFrontend { local_addr, task })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for HttpFrontend {
    fn drop(&mut self) {
        self.task.abort();
    }
}

// ---------------------------------------------------------------------
// Data-plane request/response shapes
// ---------------------------------------------------------------------

#[derive(Deserialize)]
struct PredictRequest {
    input: Vec<f32>,
    #[serde(default)]
    context: Option<String>,
}

/// Hand-rolled parse of the predict body's fixed shape —
/// `{"input":[...]}` with an optional `"context"` key in either order —
/// straight off the request bytes. The serde path builds a full value
/// tree per request; this allocates only the feature vector itself (and
/// the context string when present). Returns `None` on anything it
/// doesn't recognize — including escaped strings and duplicate keys — so
/// the caller can fall back to serde for exact error messages and full
/// JSON generality.
fn fast_parse_predict(body: &[u8]) -> Option<PredictRequest> {
    let mut c = body;
    skip_ws(&mut c);
    c = c.strip_prefix(b"{")?;
    let mut input: Option<Vec<f32>> = None;
    let mut context: Option<String> = None;
    loop {
        skip_ws(&mut c);
        let key_end = 1 + c.get(1..)?.iter().position(|&b| b == b'"' || b == b'\\')?;
        let key = match c.first()? {
            b'"' => &c[1..key_end],
            _ => return None,
        };
        if c.get(key_end)? != &b'"' {
            return None; // escape in key: bail to serde
        }
        c = &c[key_end + 1..];
        skip_ws(&mut c);
        c = c.strip_prefix(b":")?;
        skip_ws(&mut c);
        match key {
            b"input" if input.is_none() => {
                c = c.strip_prefix(b"[")?;
                let mut v = Vec::new();
                skip_ws(&mut c);
                if let Some(rest) = c.strip_prefix(b"]") {
                    c = rest;
                } else {
                    loop {
                        let end = c
                            .iter()
                            .position(|&b| {
                                !matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                            })
                            .unwrap_or(c.len());
                        if !json_number_ok(&c[..end]) {
                            return None;
                        }
                        let num: f32 = std::str::from_utf8(&c[..end]).ok()?.parse().ok()?;
                        v.push(num);
                        c = &c[end..];
                        skip_ws(&mut c);
                        if let Some(rest) = c.strip_prefix(b",") {
                            c = rest;
                            skip_ws(&mut c);
                        } else {
                            c = c.strip_prefix(b"]")?;
                            break;
                        }
                    }
                }
                input = Some(v);
            }
            b"context" if context.is_none() => {
                if let Some(rest) = c.strip_prefix(b"null") {
                    c = rest;
                } else {
                    c = c.strip_prefix(b"\"")?;
                    let end = c.iter().position(|&b| b == b'"' || b == b'\\')?;
                    if c[end] == b'\\' {
                        return None; // escaped context: bail to serde
                    }
                    context = Some(std::str::from_utf8(&c[..end]).ok()?.to_owned());
                    c = &c[end + 1..];
                }
            }
            _ => return None, // unknown or duplicate key: bail to serde
        }
        skip_ws(&mut c);
        if let Some(rest) = c.strip_prefix(b",") {
            c = rest;
        } else {
            c = c.strip_prefix(b"}")?;
            break;
        }
    }
    skip_ws(&mut c);
    if !c.is_empty() {
        return None;
    }
    Some(PredictRequest {
        input: input?,
        context,
    })
}

/// Whether `t` spells a number the JSON grammar allows —
/// `-?digits(.digits)?([eE][+-]?digits)?`. Rust's float parser is laxer
/// (`+1`, `1.`, `.5`, `inf`), and accepting those here would make the
/// fast path disagree with the serde fallback about what is a 400.
fn json_number_ok(t: &[u8]) -> bool {
    let mut s = t;
    if let Some(r) = s.strip_prefix(b"-") {
        s = r;
    }
    let d = s
        .iter()
        .position(|b| !b.is_ascii_digit())
        .unwrap_or(s.len());
    if d == 0 {
        return false;
    }
    s = &s[d..];
    if let Some(r) = s.strip_prefix(b".") {
        let d = r
            .iter()
            .position(|b| !b.is_ascii_digit())
            .unwrap_or(r.len());
        if d == 0 {
            return false;
        }
        s = &r[d..];
    }
    if let Some(r) = s.strip_prefix(b"e").or_else(|| s.strip_prefix(b"E")) {
        let r = r
            .strip_prefix(b"+")
            .or_else(|| r.strip_prefix(b"-"))
            .unwrap_or(r);
        let d = r
            .iter()
            .position(|b| !b.is_ascii_digit())
            .unwrap_or(r.len());
        if d == 0 {
            return false;
        }
        s = &r[d..];
    }
    s.is_empty()
}

fn skip_ws(c: &mut &[u8]) {
    while let Some(rest) = c
        .first()
        .filter(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        .map(|_| &c[1..])
    {
        *c = rest;
    }
}

#[derive(Serialize)]
struct PredictResponse {
    output: JsonOutput,
    confidence: f64,
    models_used: usize,
    models_missing: usize,
    latency_us: u64,
}

impl PredictResponse {
    /// Serialize through the one-pass emitter (`json_emit`), skipping the
    /// serde `Content` tree on the per-request hot path. Byte-identical
    /// to `serde_json::to_string(self)` (enforced by test), including the
    /// failure mode: a non-finite confidence or score is an internal
    /// error, not invalid JSON.
    fn to_json(&self) -> Result<String, ApiError> {
        let mut e = crate::json_emit::Emitter::with_capacity(128);
        let emit = (|| {
            e.raw("{\"output\":");
            self.output.emit(&mut e)?;
            e.raw(",\"confidence\":");
            e.f64(self.confidence)?;
            e.raw(",\"models_used\":");
            e.u64(self.models_used as u64);
            e.raw(",\"models_missing\":");
            e.u64(self.models_missing as u64);
            e.raw(",\"latency_us\":");
            e.u64(self.latency_us);
            e.raw("}");
            Ok::<(), crate::json_emit::NonFiniteFloat>(())
        })();
        match emit {
            Ok(()) => Ok(e.into_string()),
            Err(err) => Err(ApiError::Internal(err.to_string())),
        }
    }
}

#[derive(Deserialize)]
struct UpdateRequest {
    input: Vec<f32>,
    #[serde(default)]
    context: Option<String>,
    #[serde(default)]
    label: Option<u32>,
    #[serde(default)]
    labels: Option<Vec<u32>>,
}

fn status_body(status: &str) -> String {
    let mut e = crate::json_emit::Emitter::with_capacity(24);
    e.raw("{\"status\":");
    e.string(status);
    e.raw("}");
    e.into_string()
}

// ---------------------------------------------------------------------
// Request reading
// ---------------------------------------------------------------------

/// Retained-buffer size cap: buffers grown by an oversized request or
/// response shrink back once drained, so one large body doesn't pin
/// megabytes per idle connection.
const RETAINED_BUF: usize = 64 * 1024;

/// One parsed request head: index ranges into the reader's retained
/// buffer. Nothing is copied out on the per-request path — handlers
/// borrow method/path/body straight from the buffer, and
/// [`RequestReader::consume`] releases the bytes afterwards.
struct ReqHead {
    method: std::ops::Range<usize>,
    path: std::ops::Range<usize>,
    body: std::ops::Range<usize>,
    keep_alive: bool,
}

/// Buffered request reader: the socket is read directly into one
/// retained buffer, the head is scanned for `\r\n\r\n`, and overread
/// bytes stay in place for the body and the next pipelined request.
struct RequestReader {
    rd: tokio::net::tcp::OwnedReadHalf,
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    start: usize,
    /// End of valid bytes in `buf`.
    end: usize,
    /// Absolute resume point for the head-terminator scan, so each byte
    /// is examined once even when the head arrives in fragments.
    scanned: usize,
}

/// First index of `\r\n\r\n` at or after `from`.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| start + p)
}

/// Case-insensitively strip a header-name prefix, returning the value.
fn strip_header<'a>(line: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
    if line.len() >= name.len() && line[..name.len()].eq_ignore_ascii_case(name) {
        Some(&line[name.len()..])
    } else {
        None
    }
}

/// Whether a `connection:` header value contains the token `close`.
fn contains_close(value: &[u8]) -> bool {
    value.windows(5).any(|w| w.eq_ignore_ascii_case(b"close"))
}

/// Parse a decimal header value (leading spaces skipped, trailing junk
/// ignored — same tolerance as the old `trim().parse().unwrap_or(0)`).
fn parse_decimal(mut v: &[u8]) -> usize {
    while let Some((b' ', rest)) = v.split_first().map(|(b, r)| (*b, r)) {
        v = rest;
    }
    let mut n = 0usize;
    for &b in v {
        match b {
            b'0'..=b'9' => n = n.saturating_mul(10) + (b - b'0') as usize,
            _ => break,
        }
    }
    n
}

impl RequestReader {
    fn new(rd: tokio::net::tcp::OwnedReadHalf) -> Self {
        RequestReader {
            rd,
            buf: vec![0u8; READ_CHUNK],
            start: 0,
            end: 0,
            scanned: 0,
        }
    }

    fn slice(&self, r: &std::ops::Range<usize>) -> &[u8] {
        &self.buf[r.clone()]
    }

    /// Read more bytes into the retained buffer, compacting consumed
    /// space (or growing) when full. Returns bytes read; 0 means EOF.
    async fn fill(&mut self) -> std::io::Result<usize> {
        if self.end == self.buf.len() {
            if self.start > 0 {
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.scanned -= self.start;
                self.start = 0;
            } else {
                self.buf.resize(self.buf.len() * 2, 0);
            }
        }
        let n = self.rd.read(&mut self.buf[self.end..]).await?;
        self.end += n;
        Ok(n)
    }

    /// Parse one request if it is fully buffered; `Ok(None)` means more
    /// bytes are needed (call [`Self::fill`] or [`Self::next`]).
    fn try_next(&mut self) -> std::io::Result<Option<ReqHead>> {
        let head_end = match find_head_end(&self.buf[..self.end], self.scanned.max(self.start)) {
            Some(pos) => pos + 4,
            None => {
                self.scanned = self.end.saturating_sub(3).max(self.start);
                if self.end - self.start > MAX_HEAD {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "headers too large",
                    ));
                }
                return Ok(None);
            }
        };

        // Request line: method, then path, space-separated.
        let head = &self.buf[self.start..head_end];
        let line_end = head
            .windows(2)
            .position(|w| w == b"\r\n")
            .unwrap_or(head.len());
        let line = &head[..line_end];
        let method_len = line.iter().position(|&b| b == b' ').unwrap_or(line.len());
        let after_method = &line[method_len..];
        let path_off = after_method
            .iter()
            .position(|&b| b != b' ')
            .unwrap_or(after_method.len());
        let path_start = method_len + path_off;
        let path_end = line[path_start..]
            .iter()
            .position(|&b| b == b' ')
            .map(|p| path_start + p)
            .unwrap_or(line.len());

        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut rest = &head[line_end..];
        while rest.len() > 2 {
            rest = &rest[2..]; // strip the leading \r\n
            let le = rest
                .windows(2)
                .position(|w| w == b"\r\n")
                .unwrap_or(rest.len());
            let hline = &rest[..le];
            if let Some(v) = strip_header(hline, b"content-length:") {
                content_length = parse_decimal(v);
            } else if strip_header(hline, b"connection:").is_some_and(contains_close) {
                keep_alive = false;
            }
            rest = &rest[le..];
        }
        if content_length > MAX_BODY {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "body too large",
            ));
        }

        // The body may still be in flight.
        let total = head_end + content_length;
        if self.end < total {
            return Ok(None);
        }
        Ok(Some(ReqHead {
            method: self.start..self.start + method_len,
            path: self.start + path_start..self.start + path_end,
            body: head_end..total,
            keep_alive,
        }))
    }

    /// Read one request, or `None` on clean EOF between requests.
    async fn next(&mut self) -> std::io::Result<Option<ReqHead>> {
        loop {
            if let Some(head) = self.try_next()? {
                return Ok(Some(head));
            }
            if self.fill().await? == 0 {
                if self.start == self.end {
                    return Ok(None); // clean EOF between requests
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ));
            }
        }
    }

    /// Release a served request's bytes; whatever follows belongs to the
    /// next pipelined request.
    fn consume(&mut self, head: &ReqHead) {
        self.start = head.body.end;
        self.scanned = self.start;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            self.scanned = 0;
            if self.buf.len() > RETAINED_BUF {
                self.buf = vec![0u8; READ_CHUNK];
            }
        }
    }
}

// ---------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------

/// Body size at or above which the response head and body go to the
/// kernel as one gather write instead of being copied together.
const VECTORED_BODY: usize = 4 * 1024;

/// Buffered response writer with one retained output buffer. Responses
/// are queued and flushed together, so pipelined requests answered in
/// one readiness window coalesce into a single write; large bodies skip
/// the copy entirely via a vectored head+body write.
struct ResponseWriter {
    wr: tokio::net::tcp::OwnedWriteHalf,
    out: Vec<u8>,
}

/// Append the decimal digits of `n`.
fn push_decimal(out: &mut Vec<u8>, mut n: usize) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

impl ResponseWriter {
    fn new(wr: tokio::net::tcp::OwnedWriteHalf) -> Self {
        ResponseWriter {
            wr,
            out: Vec::with_capacity(READ_CHUNK),
        }
    }

    fn queue_head(&mut self, status: u16, body_len: usize, keep_alive: bool) {
        let reason = match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            409 => "Conflict",
            410 => "Gone",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Internal Server Error",
        };
        self.out.extend_from_slice(b"HTTP/1.1 ");
        push_decimal(&mut self.out, status as usize);
        self.out.push(b' ');
        self.out.extend_from_slice(reason.as_bytes());
        self.out
            .extend_from_slice(b"\r\ncontent-type: application/json\r\ncontent-length: ");
        push_decimal(&mut self.out, body_len);
        self.out.extend_from_slice(b"\r\nconnection: ");
        self.out.extend_from_slice(if keep_alive {
            b"keep-alive".as_slice()
        } else {
            b"close".as_slice()
        });
        self.out.extend_from_slice(b"\r\n\r\n");
    }

    /// Queue one complete response. Small bodies append to the retained
    /// buffer (flushed before the connection next blocks); large bodies
    /// flush immediately as a single vectored write of everything queued
    /// plus the body.
    async fn respond(&mut self, status: u16, body: &str, keep_alive: bool) -> std::io::Result<()> {
        self.queue_head(status, body.len(), keep_alive);
        if body.len() >= VECTORED_BODY {
            let mut slices = [
                std::io::IoSlice::new(&self.out),
                std::io::IoSlice::new(body.as_bytes()),
            ];
            self.wr.write_all_vectored(&mut slices).await?;
            self.wr.flush().await?;
            self.reset();
        } else {
            self.out.extend_from_slice(body.as_bytes());
        }
        Ok(())
    }

    /// Write everything queued as one write.
    async fn flush(&mut self) -> std::io::Result<()> {
        if self.out.is_empty() {
            return Ok(());
        }
        self.wr.write_all(&self.out).await?;
        self.wr.flush().await?;
        self.reset();
        Ok(())
    }

    fn reset(&mut self) {
        self.out.clear();
        if self.out.capacity() > RETAINED_BUF {
            self.out = Vec::with_capacity(READ_CHUNK);
        }
    }
}

async fn serve_connection(conn: TcpStream, clipper: Clipper) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let (rd, wr) = conn.into_split();
    let mut reader = RequestReader::new(rd);
    let mut writer = ResponseWriter::new(wr);
    loop {
        // Serve everything already buffered before flushing: responses to
        // pipelined requests coalesce into one write, and the flush
        // happens exactly when the connection would otherwise block.
        let parsed = match reader.try_next() {
            Ok(Some(head)) => Ok(Some(head)),
            Ok(None) => {
                writer.flush().await?;
                reader.next().await
            }
            Err(e) => Err(e),
        };
        let head = match parsed {
            Ok(Some(head)) => head,
            Ok(None) => return Ok(()), // clean EOF; nothing left queued
            Err(e) => {
                let err = ApiError::BadRequest(e.to_string());
                let _ = writer
                    .respond(400, &ErrorBody::of(&err).to_json(), false)
                    .await;
                let _ = writer.flush().await;
                return Ok(());
            }
        };
        let keep_alive = head.keep_alive;
        let (status, body) = route(
            &clipper,
            reader.slice(&head.method),
            reader.slice(&head.path),
            reader.slice(&head.body),
        )
        .await;
        writer.respond(status, &body, keep_alive).await?;
        reader.consume(&head);
        if !keep_alive {
            writer.flush().await?;
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

/// HTTP methods the surface speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Method {
    Get,
    Post,
    Patch,
    Delete,
}

impl Method {
    fn parse(raw: &[u8]) -> Option<Method> {
        match raw {
            b"GET" => Some(Method::Get),
            b"POST" => Some(Method::Post),
            b"PATCH" => Some(Method::Patch),
            b"DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// Deepest route shape is 5 segments; anything deeper matches nothing.
const MAX_SEGMENTS: usize = 8;

/// A typed route: method plus non-empty path segments (query stripped),
/// split into a fixed array — no per-request allocation. Handlers match
/// on exact segment shapes.
struct Route<'a> {
    method: Method,
    segments: [&'a str; MAX_SEGMENTS],
    len: usize,
}

impl<'a> Route<'a> {
    /// `None` when the path is deeper than any route — a 404, since every
    /// registered route is at most 5 segments.
    fn parse(method: Method, path: &'a str) -> Option<Route<'a>> {
        let path = path.split('?').next().unwrap_or("");
        let mut segments = [""; MAX_SEGMENTS];
        let mut len = 0usize;
        for s in path.split('/').filter(|s| !s.is_empty()) {
            if len == MAX_SEGMENTS {
                return None;
            }
            segments[len] = s;
            len += 1;
        }
        Some(Route {
            method,
            segments,
            len,
        })
    }

    fn segs(&self) -> &[&'a str] {
        &self.segments[..self.len]
    }
}

fn parse_json<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    // No prefix here: `ApiError::BadRequest`'s Display already renders
    // "bad request: {msg}" (a doubled prefix reached the wire before).
    serde_json::from_slice(body).map_err(|e| ApiError::BadRequest(e.to_string()))
}

fn json_ok<T: Serialize>(status: u16, value: &T) -> Result<(u16, String), ApiError> {
    let body = serde_json::to_string(value).map_err(|e| ApiError::Internal(e.to_string()))?;
    Ok((status, body))
}

async fn route(clipper: &Clipper, method: &[u8], path: &[u8], body: &[u8]) -> (u16, String) {
    let result = match Method::parse(method) {
        None => Err(ApiError::BadRequest(format!(
            "unsupported method {}",
            String::from_utf8_lossy(method)
        ))),
        Some(m) => match std::str::from_utf8(path) {
            Err(_) => Err(ApiError::BadRequest("path is not valid utf-8".into())),
            Ok(p) => match Route::parse(m, p) {
                None => Err(ApiError::NotFound),
                Some(r) => dispatch(clipper, r, body).await,
            },
        },
    };
    match result {
        Ok(ok) => ok,
        Err(e) => (e.http_status(), ErrorBody::of(&e).to_json()),
    }
}

async fn dispatch(
    clipper: &Clipper,
    route: Route<'_>,
    body: &[u8],
) -> Result<(u16, String), ApiError> {
    use Method::*;
    match (route.method, route.segs()) {
        (Get, ["health"]) => Ok((200, status_body("ok"))),
        (Get, ["metrics"]) => {
            let snap = clipper.registry().snapshot();
            Ok((200, snapshot_to_json(&snap)?))
        }

        // --- data plane (v1 + legacy aliases) ---
        (Post, ["api", "v1", "apps", app, "predict"]) | (Post, ["apps", app, "predict"]) => {
            handle_predict(clipper, app, body).await
        }
        (Post, ["api", "v1", "apps", app, "update"]) | (Post, ["apps", app, "update"]) => {
            handle_update(clipper, app, body).await
        }

        // --- app lifecycle ---
        (Get, ["api", "v1", "apps"]) => {
            let mut views: Vec<AppView> = clipper
                .apps()
                .iter()
                .filter_map(|name| clipper.app_config(name))
                .map(|cfg| AppView::from(&cfg))
                .collect();
            views.sort_by(|a, b| a.name.cmp(&b.name));
            Ok((200, app_views_to_json(&views)?))
        }
        (Post, ["api", "v1", "apps"]) => {
            let spec: AppSpec = parse_json(body)?;
            if spec.name.is_empty() {
                return Err(ApiError::BadRequest("app name must not be empty".into()));
            }
            if spec.candidate_models.is_empty() {
                return Err(ApiError::BadRequest(
                    "candidate_models must not be empty".into(),
                ));
            }
            let cfg = spec.into_config();
            clipper.try_register_app(cfg.clone())?;
            Ok((201, AppView::from(&cfg).to_json()?))
        }
        (Get, ["api", "v1", "apps", app]) => {
            let cfg = clipper
                .app_config(app)
                .ok_or_else(|| ApiError::AppUnknown(app.to_string()))?;
            Ok((200, AppView::from(&cfg).to_json()?))
        }
        (Patch, ["api", "v1", "apps", app]) => {
            let patch: AppPatch = parse_json(body)?;
            let cfg = clipper.update_app(app, patch.into_update())?;
            Ok((200, AppView::from(&cfg).to_json()?))
        }
        (Delete, ["api", "v1", "apps", app]) => {
            clipper.unregister_app(app)?;
            Ok((200, status_body("deleted")))
        }

        // --- model lifecycle ---
        (Get, ["api", "v1", "models"]) | (Get, ["models"]) => {
            Ok((200, model_views_to_json(&clipper.model_views())))
        }
        (Post, ["api", "v1", "models"]) => {
            let spec: ModelSpec = parse_json(body)?;
            if spec.name.is_empty() {
                return Err(ApiError::BadRequest("model name must not be empty".into()));
            }
            let id = ModelId::new(&spec.name, spec.version);
            // Create-only, like POST /api/v1/apps: re-registering an
            // existing version would silently no-op (the MAL keeps the
            // original config), so surface it as a conflict instead.
            // `add_model` reports insertion atomically — of two
            // concurrent creates exactly one gets the 201.
            if !clipper.add_model(id, Default::default()) {
                return Err(ApiError::VersionExists {
                    model: spec.name.clone(),
                    version: spec.version,
                });
            }
            let view = clipper
                .model_view(&spec.name)
                .ok_or_else(|| ApiError::Internal("model registration lost".into()))?;
            Ok((201, view.to_json()))
        }
        (Get, ["api", "v1", "models", name]) => {
            let view = clipper
                .model_view(name)
                .ok_or_else(|| ApiError::ModelUnknown(name.to_string()))?;
            Ok((200, view.to_json()))
        }
        (Post, ["api", "v1", "models", name, "rollout"]) => {
            let req: RolloutRequest = parse_json(body)?;
            let outcome = clipper.rollout_model(name, req.version).await?;
            json_ok(200, &outcome)
        }
        (Post, ["api", "v1", "models", name, "rollback"]) => {
            let outcome = clipper.rollback_model(name).await?;
            json_ok(200, &outcome)
        }

        // --- fleet (replica lifecycle) ---
        (Get, ["api", "v1", "replicas"]) => json_ok(200, &clipper.fleet().list()),
        (Post, ["api", "v1", "replicas"]) => {
            let spec: crate::api::ReplicaSpec = parse_json(body)?;
            let outcome = clipper.fleet().register(spec)?;
            json_ok(201, &outcome)
        }
        (Get, ["api", "v1", "replicas", name]) => {
            let view = clipper
                .fleet()
                .view(name)
                .ok_or_else(|| ApiError::ReplicaUnknown(name.to_string()))?;
            json_ok(200, &view)
        }
        (Post, ["api", "v1", "replicas", name, "heartbeat"]) => {
            // An empty body is a pure liveness beat.
            let report: crate::api::HeartbeatReport = if body.is_empty() {
                Default::default()
            } else {
                parse_json(body)?
            };
            let view = clipper.fleet().heartbeat(name, report)?;
            json_ok(200, &view)
        }
        (Delete, ["api", "v1", "replicas", name]) => {
            clipper.fleet().deregister(name).await?;
            Ok((200, status_body("deregistered")))
        }

        _ => Err(ApiError::NotFound),
    }
}

/// Lift a data-plane failure into the API taxonomy, attaching the app
/// name to `AppUnknown` so 404 bodies say which app was missing.
fn data_plane_err(e: crate::batching::queue::PredictError, app: &str) -> ApiError {
    match e {
        crate::batching::queue::PredictError::AppUnknown => ApiError::AppUnknown(app.to_string()),
        other => ApiError::Predict(other),
    }
}

async fn handle_predict(
    clipper: &Clipper,
    app: &str,
    body: &[u8],
) -> Result<(u16, String), ApiError> {
    let parsed: PredictRequest = match fast_parse_predict(body) {
        Some(req) => req,
        None => parse_json(body)?,
    };
    let p = clipper
        .predict(app, parsed.context.as_deref(), Arc::new(parsed.input))
        .await
        .map_err(|e| data_plane_err(e, app))?;
    let resp = PredictResponse {
        output: p.output.into(),
        confidence: p.confidence,
        models_used: p.models_used,
        models_missing: p.models_missing,
        latency_us: p.latency.as_micros() as u64,
    };
    Ok((200, resp.to_json()?))
}

async fn handle_update(
    clipper: &Clipper,
    app: &str,
    body: &[u8],
) -> Result<(u16, String), ApiError> {
    let parsed: UpdateRequest = parse_json(body)?;
    let feedback = match (parsed.label, parsed.labels) {
        (Some(label), None) => Feedback::class(label),
        (None, Some(labels)) => Feedback::labels(labels),
        _ => {
            return Err(ApiError::BadRequest(
                "provide exactly one of label / labels".into(),
            ));
        }
    };
    clipper
        .feedback(
            app,
            parsed.context.as_deref(),
            Arc::new(parsed.input),
            feedback,
        )
        .await
        .map_err(|e| data_plane_err(e, app))?;
    Ok((200, status_body("ok")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::BatchConfig;
    use crate::types::{AppConfig, ModelId, PolicyKind};
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;
    use std::time::Duration;

    async fn start_frontend() -> (HttpFrontend, Clipper) {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("m", 1);
        clipper.add_model(m.clone(), BatchConfig::default());
        clipper
            .add_replica(
                &m,
                Arc::new(FnTransport::new(
                    "echo",
                    |inputs: &[clipper_rpc::Input]| {
                        Ok(PredictReply {
                            outputs: inputs
                                .iter()
                                .map(
                                    |x| WireOutput::Class(x.first().copied().unwrap_or(0.0) as u32),
                                )
                                .collect(),
                            queue_us: 0,
                            compute_us: 10,
                        })
                    },
                )),
            )
            .unwrap();
        clipper.register_app(
            AppConfig::new("digits", vec![m])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(100)),
        );
        let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
            .await
            .unwrap();
        (frontend, clipper)
    }

    async fn http_call(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).await.unwrap();
        conn.write_all(raw.as_bytes()).await.unwrap();
        conn.shutdown().await.unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).await.unwrap();
        buf
    }

    fn request(method: &str, path: &str, body: &str) -> String {
        format!(
            "{method} {path} HTTP/1.1\r\nhost: x\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
    }

    fn post(path: &str, body: &str) -> String {
        request("POST", path, body)
    }

    #[test]
    fn predict_response_fast_path_is_byte_identical_to_serde() {
        // The hot-path emitter must produce exactly what the serde path
        // produced, for every output shape and float formatting case.
        let cases = [
            PredictResponse {
                output: JsonOutput::Class { label: 7 },
                confidence: 1.0,
                models_used: 3,
                models_missing: 0,
                latency_us: 812,
            },
            PredictResponse {
                output: JsonOutput::Scores {
                    scores: vec![0.125, 1.0 / 3.0, -2.0],
                },
                confidence: 0.6666666666666666,
                models_used: 1,
                models_missing: 2,
                latency_us: 0,
            },
            PredictResponse {
                output: JsonOutput::Labels {
                    labels: vec![9, 8, 7],
                },
                confidence: 0.0,
                models_used: 0,
                models_missing: 0,
                latency_us: u64::MAX,
            },
        ];
        for resp in &cases {
            assert_eq!(
                resp.to_json().unwrap(),
                serde_json::to_string(resp).unwrap(),
                "fast emitter diverged"
            );
        }
        // Non-finite confidence: same failure as the serde path (an
        // internal error), never invalid JSON on the wire.
        let bad = PredictResponse {
            output: JsonOutput::Class { label: 1 },
            confidence: f64::NAN,
            models_used: 1,
            models_missing: 0,
            latency_us: 1,
        };
        assert!(matches!(bad.to_json(), Err(ApiError::Internal(_))));
        assert!(serde_json::to_string(&bad).is_err());
    }

    #[test]
    fn fast_predict_parse_agrees_with_serde() {
        // Everything the fast path accepts, serde must parse to the same
        // value; everything it rejects must be valid-for-serde (fallback
        // handles it) or invalid-for-both (400 either way).
        let accepted: &[(&str, &[f32], Option<&str>)] = &[
            (r#"{"input":[7.0]}"#, &[7.0], None),
            (
                "  {\t\"input\" : [ 1 , -2.5 ,\n3e2, 4E-1, 0.125 ] }  ",
                &[1.0, -2.5, 300.0, 0.4, 0.125],
                None,
            ),
            (r#"{"input":[]}"#, &[], None),
            (r#"{"context":"ctx-1","input":[1]}"#, &[1.0], Some("ctx-1")),
            (r#"{"input":[1],"context":null}"#, &[1.0], None),
            (
                r#"{"input":[2],"context":"späß 世界"}"#,
                &[2.0],
                Some("späß 世界"),
            ),
        ];
        for (body, input, context) in accepted {
            let fast = fast_parse_predict(body.as_bytes())
                .unwrap_or_else(|| panic!("fast path must accept {body}"));
            assert_eq!(fast.input, *input, "input for {body}");
            assert_eq!(fast.context.as_deref(), *context, "context for {body}");
            let via_serde: PredictRequest = serde_json::from_slice(body.as_bytes())
                .unwrap_or_else(|_| panic!("serde must also accept {body}"));
            assert_eq!(via_serde.input, fast.input, "serde diverged for {body}");
            assert_eq!(via_serde.context, fast.context);
        }

        // Bailed to serde: exotic-but-valid JSON the fast path skips.
        for body in [
            r#"{"input":[1],"context":"quo\"te"}"#,
            r#"{"input":[1],"extra":2}"#,
            r#"{"input":[1],"input":[2]}"#,
        ] {
            assert!(
                fast_parse_predict(body.as_bytes()).is_none(),
                "fast path must bail on {body}"
            );
        }

        // Number spellings Rust's float parser takes but the JSON grammar
        // forbids: the fast path must bail (never accept behind serde's
        // back), leaving serde the sole authority on what is a 400.
        for body in [
            r#"{"input":[+1]}"#,
            r#"{"input":[1.]}"#,
            r#"{"input":[.5]}"#,
            r#"{"input":[1e]}"#,
            r#"{"input":[inf]}"#,
            r#"{"input":[1] trailing}"#,
            r#"[1]"#,
            r#"{"input":[1}"#,
            r#"{}"#,
        ] {
            assert!(
                fast_parse_predict(body.as_bytes()).is_none(),
                "fast path must reject {body}"
            );
        }

        // And a few of those are invalid for serde too — same 400 either
        // path.
        for body in [r#"{"input":[1] trailing}"#, r#"{"input":[1}"#, r#"[1]"#] {
            assert!(
                serde_json::from_slice::<PredictRequest>(body.as_bytes()).is_err(),
                "serde must reject {body}"
            );
        }
    }

    #[test]
    fn status_body_fast_path_is_byte_identical_to_serde() {
        #[derive(Serialize)]
        struct StatusBody {
            status: String,
        }
        for status in ["ok", "deleted", "we\"ird\\status"] {
            assert_eq!(
                status_body(status),
                serde_json::to_string(&StatusBody {
                    status: status.to_string(),
                })
                .unwrap()
            );
        }
    }

    #[tokio::test]
    async fn health_endpoint_responds() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /health HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"ok\""));
    }

    #[tokio::test]
    async fn predict_over_http() {
        let (frontend, _clipper) = start_frontend().await;
        for path in ["/apps/digits/predict", "/api/v1/apps/digits/predict"] {
            let resp = http_call(
                frontend.local_addr(),
                &post(path, "{\"input\": [7.0, 1.0]}"),
            )
            .await;
            assert!(resp.starts_with("HTTP/1.1 200"), "{path}: {resp}");
            assert!(resp.contains("\"label\":7"), "{resp}");
            assert!(resp.contains("\"confidence\":1.0"), "{resp}");
        }
    }

    #[tokio::test]
    async fn update_over_http_records_feedback() {
        let (frontend, clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/update", "{\"input\": [3.0], \"label\": 3}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let resp = http_call(
            frontend.local_addr(),
            &post(
                "/api/v1/apps/digits/update",
                "{\"input\": [4.0], \"label\": 4}",
            ),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let state = clipper.policy_state("digits", None).unwrap();
        assert_eq!(state.total, 2);
    }

    #[tokio::test]
    async fn bad_json_is_a_400_with_typed_body() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{not json"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
        assert!(
            resp.contains("bad request: ") && !resp.contains("bad request: bad request:"),
            "exactly one taxonomy prefix on the message: {resp}"
        );
    }

    #[tokio::test]
    async fn unknown_app_predict_is_a_404_not_a_500() {
        // Satellite regression: predict/update on an unregistered app used
        // to surface as 500; the taxonomy maps AppUnknown to 404.
        let (frontend, _clipper) = start_frontend().await;
        for path in [
            "/apps/ghost/predict",
            "/api/v1/apps/ghost/predict",
            "/apps/ghost/update",
        ] {
            let body = if path.ends_with("update") {
                "{\"input\": [1.0], \"label\": 1}"
            } else {
                "{\"input\": [1.0]}"
            };
            let resp = http_call(frontend.local_addr(), &post(path, body)).await;
            assert!(resp.starts_with("HTTP/1.1 404"), "{path}: {resp}");
            assert!(resp.contains("\"code\":\"app_unknown\""), "{resp}");
        }
    }

    #[tokio::test]
    async fn error_bodies_with_quotes_are_valid_json() {
        // Satellite regression: format!-built error bodies emitted broken
        // JSON when the message contained a quote.
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/we\"ird\\app/predict", "{\"input\": [1.0]}"),
        )
        .await;
        let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
        let parsed: serde_json::Value =
            serde_json::from_str(body).expect("error body must be valid JSON");
        assert_eq!(parsed["error"]["code"], "app_unknown");
        assert!(
            parsed["error"]["message"]
                .as_str()
                .is_some_and(|m| m.contains("we\"ird\\app")),
            "message carries the raw name: {body}"
        );
    }

    #[tokio::test]
    async fn unknown_route_is_404() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /nope HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        assert!(resp.contains("\"code\":\"not_found\""), "{resp}");
    }

    #[tokio::test]
    async fn models_endpoint_reports_catalog_and_scheduler_state() {
        let (frontend, _clipper) = start_frontend().await;
        for path in ["/models", "/api/v1/models"] {
            let resp = http_call(
                frontend.local_addr(),
                &format!("GET {path} HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"),
            )
            .await;
            assert!(resp.starts_with("HTTP/1.1 200"), "{path}: {resp}");
            assert!(resp.contains("\"name\":\"m\""), "{resp}");
            assert!(resp.contains("\"current_version\":1"), "{resp}");
            assert!(resp.contains("\"queue_depth\""), "{resp}");
            assert!(resp.contains("m:v1:0"), "{resp}");
        }
    }

    #[tokio::test]
    async fn app_crud_over_http() {
        let (frontend, _clipper) = start_frontend().await;
        let addr = frontend.local_addr();
        // Create.
        let resp = http_call(
            addr,
            &post(
                "/api/v1/apps",
                "{\"name\":\"crud\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}],\
                 \"slo_ms\":30}",
            ),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
        // Duplicate create → 409.
        let resp = http_call(
            addr,
            &post(
                "/api/v1/apps",
                "{\"name\":\"crud\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}]}",
            ),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 409"), "{resp}");
        assert!(resp.contains("\"code\":\"app_exists\""), "{resp}");
        // Read back.
        let resp = http_call(
            addr,
            "GET /api/v1/apps/crud HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"slo_ms\":30"), "{resp}");
        // Live-update the SLO.
        let resp = http_call(
            addr,
            &request("PATCH", "/api/v1/apps/crud", "{\"slo_ms\":99}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"slo_ms\":99"), "{resp}");
        // The new app serves predictions.
        let resp = http_call(
            addr,
            &post("/api/v1/apps/crud/predict", "{\"input\":[5.0]}"),
        )
        .await;
        assert!(resp.contains("\"label\":5"), "{resp}");
        // List contains both apps.
        let resp = http_call(
            addr,
            "GET /api/v1/apps HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(
            resp.contains("\"crud\"") && resp.contains("\"digits\""),
            "{resp}"
        );
        // Delete; reads and predicts then 404.
        let resp = http_call(addr, &request("DELETE", "/api/v1/apps/crud", "")).await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let resp = http_call(
            addr,
            "GET /api/v1/apps/crud HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = http_call(
            addr,
            &post("/api/v1/apps/crud/predict", "{\"input\":[1.0]}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    }

    #[tokio::test]
    async fn model_registration_and_rollout_over_http() {
        let (frontend, clipper) = start_frontend().await;
        let addr = frontend.local_addr();
        // Register version 2 over HTTP, then attach a replica in-process
        // (replicas are transports; they connect via RPC, not JSON).
        let resp = http_call(
            addr,
            &post("/api/v1/models", "{\"name\":\"m\",\"version\":2}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
        // Re-registering the same version is a conflict, not a silent
        // 201 no-op.
        let resp = http_call(
            addr,
            &post("/api/v1/models", "{\"name\":\"m\",\"version\":2}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 409"), "{resp}");
        assert!(resp.contains("\"code\":\"version_exists\""), "{resp}");
        // Rollout before any replica attaches → 409.
        let resp = http_call(addr, &post("/api/v1/models/m/rollout", "{\"version\":2}")).await;
        assert!(resp.starts_with("HTTP/1.1 409"), "{resp}");
        assert!(resp.contains("no_replicas_for_version"), "{resp}");
        clipper
            .add_replica(
                &ModelId::new("m", 2),
                Arc::new(FnTransport::new("v2", |inputs: &[clipper_rpc::Input]| {
                    Ok(PredictReply {
                        outputs: vec![WireOutput::Class(42); inputs.len()],
                        queue_us: 0,
                        compute_us: 5,
                    })
                })),
            )
            .unwrap();
        let resp = http_call(addr, &post("/api/v1/models/m/rollout", "{\"version\":2}")).await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"to_version\":2"), "{resp}");
        assert!(resp.contains("digits"), "app repointed: {resp}");
        // Predicts now come from v2.
        let resp = http_call(addr, &post("/apps/digits/predict", "{\"input\":[9.0]}")).await;
        assert!(resp.contains("\"label\":42"), "{resp}");
        // Rollback over HTTP restores v1 (echo transport).
        let resp = http_call(addr, &post("/api/v1/models/m/rollback", "")).await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let resp = http_call(addr, &post("/apps/digits/predict", "{\"input\":[8.0]}")).await;
        assert!(resp.contains("\"label\":8"), "{resp}");
        // Unknown model rollout → 404.
        let resp = http_call(
            addr,
            &post("/api/v1/models/ghost/rollout", "{\"version\":1}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    }

    #[tokio::test]
    async fn metrics_endpoint_returns_json() {
        let (frontend, _clipper) = start_frontend().await;
        // Generate some traffic first.
        http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{\"input\": [1.0]}"),
        )
        .await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /metrics HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("clipper/predictions"), "{resp}");
    }

    #[tokio::test]
    async fn keep_alive_serves_multiple_requests() {
        let (frontend, _clipper) = start_frontend().await;
        let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
        for i in 0..3 {
            let body = format!("{{\"input\": [{i}.0]}}");
            let req = format!(
                "POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            conn.write_all(req.as_bytes()).await.unwrap();
            let mut buf = vec![0u8; 4096];
            let n = conn.read(&mut buf).await.unwrap();
            let resp = String::from_utf8_lossy(&buf[..n]);
            assert!(resp.contains(&format!("\"label\":{i}")), "req {i}: {resp}");
        }
    }

    #[tokio::test]
    async fn pipelined_requests_are_carried_across_reads() {
        // Two requests written in one burst: the buffered reader must
        // carve the first body out of the overread and keep the remainder
        // for the second request.
        let (frontend, _clipper) = start_frontend().await;
        let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
        let b1 = "{\"input\": [1.0]}";
        let b2 = "{\"input\": [2.0]}";
        let burst = format!(
            "POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{b1}\
             POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{b2}",
            b1.len(),
            b2.len()
        );
        conn.write_all(burst.as_bytes()).await.unwrap();
        conn.shutdown().await.unwrap();
        let mut all = String::new();
        conn.read_to_string(&mut all).await.unwrap();
        assert!(all.contains("\"label\":1"), "{all}");
        assert!(all.contains("\"label\":2"), "{all}");
    }

    #[tokio::test]
    async fn mixed_case_headers_are_honored() {
        // The byte-level head parser must stay case-insensitive for
        // header names and the `close` token.
        let (frontend, _clipper) = start_frontend().await;
        let body = "{\"input\": [6.0]}";
        let raw = format!(
            "POST /apps/digits/predict HTTP/1.1\r\nHost: x\r\nCONTENT-LENGTH: {}\r\nConnection: CLOSE\r\n\r\n{body}",
            body.len()
        );
        let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
        conn.write_all(raw.as_bytes()).await.unwrap();
        // No shutdown: `connection: CLOSE` alone must end the exchange.
        let mut resp = String::new();
        conn.read_to_string(&mut resp).await.unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"label\":6"), "{resp}");
        assert!(resp.contains("connection: close"), "{resp}");
    }

    #[tokio::test]
    async fn large_response_bodies_arrive_intact() {
        // Bodies ≥ 4 KiB take the vectored head+body write path; the
        // response must still be a single well-formed HTTP message.
        let (frontend, clipper) = start_frontend().await;
        for i in 0..60 {
            clipper.register_app(
                AppConfig::new(
                    &format!("padded-app-name-{i:04}"),
                    vec![ModelId::new("m", 1)],
                )
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(100)),
            );
        }
        let resp = http_call(
            frontend.local_addr(),
            "GET /api/v1/apps HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        assert!(body.len() >= 4 * 1024, "body is {} bytes", body.len());
        let advertised: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(advertised, body.len());
        assert!(body.contains("padded-app-name-0059"), "last app present");
    }

    #[tokio::test]
    async fn overly_deep_paths_are_404() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /a/b/c/d/e/f/g/h/i/j HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        assert!(resp.contains("\"code\":\"not_found\""), "{resp}");
    }

    #[tokio::test]
    async fn update_requires_exactly_one_feedback_kind() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/update", "{\"input\": [1.0]}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
    }
}
