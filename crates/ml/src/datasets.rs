//! Seeded synthetic datasets shaped after the paper's Table 1.
//!
//! Each dataset is a Gaussian mixture with **sparse class means**: every
//! class concentrates its signal on a small subset of dimensions (the way
//! digit pixels carry class information), with unit total energy. Examples
//! are mean plus isotropic noise whose per-dimension σ does *not* shrink
//! with dimensionality, so the `difficulty` knob is a direct
//! noise-to-margin ratio:
//!
//! - linear-model pairwise discriminability `z ≈ 1/difficulty`
//!   (difficulty 0.3 → ~99.9% pairwise, 0.5 → ~98%, 0.8 → ~80%);
//! - sparse means keep per-feature signal large enough that trees and
//!   forests learn real splits, as they do on image data.
//!
//! This tunability lets the selection-layer experiments (Figures 7–10)
//! build ensembles of models with *distinct, controllable* error rates.
//!
//! The full Table-1 corpora (70K MNIST images, 1.26M ImageNet images) are
//! impractical to regenerate per test run; specs default to scaled-down
//! sizes but carry the paper's full-size numbers for reporting
//! ([`DatasetSpec::paper_size`]).

use rand::prelude::*;
use rand_distr::Normal;

/// One labeled example: dense feature vector plus class label.
#[derive(Clone, Debug)]
pub struct Example {
    /// Dense feature vector.
    pub x: Vec<f32>,
    /// Class label in `0..num_classes`.
    pub y: u32,
}

/// Specification for a synthetic dataset generator.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Human-readable name ("mnist-like", ...).
    pub name: String,
    /// Feature dimensionality.
    pub num_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of training examples to generate.
    pub train_size: usize,
    /// Number of held-out test examples to generate.
    pub test_size: usize,
    /// Noise-to-margin ratio in (0, ∞): higher is harder. 0.3 is nearly
    /// separable, 0.5 gives Bayes error in the few-percent range, 0.8+
    /// produces the 10–40% error bands of the paper's benchmark models.
    pub difficulty: f32,
    /// The corpus size reported in the paper's Table 1 (for reporting only).
    pub paper_size: usize,
}

impl DatasetSpec {
    /// MNIST-shaped: 28×28 grayscale → 784 features, 10 classes.
    pub fn mnist_like() -> Self {
        DatasetSpec {
            name: "mnist-like".into(),
            num_features: 28 * 28,
            num_classes: 10,
            train_size: 2_000,
            test_size: 500,
            difficulty: 0.35,
            paper_size: 70_000,
        }
    }

    /// CIFAR-10-shaped: 32×32×3 → 3072 features, 10 classes.
    pub fn cifar_like() -> Self {
        DatasetSpec {
            name: "cifar-like".into(),
            num_features: 32 * 32 * 3,
            num_classes: 10,
            train_size: 1_500,
            test_size: 500,
            difficulty: 0.25,
            paper_size: 60_000,
        }
    }

    /// ImageNet-shaped: high-dimensional, many classes. The paper uses
    /// 299×299×3 inputs and 1000 classes; we keep 1000 classes but a
    /// 2048-dim feature space (the dimensionality of a conv-net's
    /// penultimate layer, which is what serving systems actually move).
    pub fn imagenet_like() -> Self {
        DatasetSpec {
            name: "imagenet-like".into(),
            num_features: 2_048,
            num_classes: 1_000,
            train_size: 4_000,
            test_size: 1_000,
            difficulty: 0.2,
            paper_size: 1_260_000,
        }
    }

    /// TIMIT-shaped frame classification: 39 phoneme classes over MFCC-like
    /// 39-dim frames (13 coefficients × 3 derivatives). The sequence-level
    /// speech workload lives in [`crate::speech`].
    pub fn speech_like() -> Self {
        DatasetSpec {
            name: "speech-like".into(),
            num_features: 39,
            num_classes: 39,
            train_size: 3_000,
            test_size: 800,
            difficulty: 0.35,
            paper_size: 6_300,
        }
    }

    /// Override the number of training examples.
    pub fn with_train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Override the number of test examples.
    pub fn with_test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Override the difficulty (noise-to-separation ratio).
    pub fn with_difficulty(mut self, d: f32) -> Self {
        self.difficulty = d;
        self
    }

    /// Generate the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        // Sparse unit-energy class means: each class activates a small set
        // of dimensions. Pairwise mean distance ≈ √2 (near-disjoint
        // supports), so per-dimension noise of 0.7·difficulty puts the
        // pairwise linear discriminability at z ≈ 1/difficulty.
        let noise_sigma = 0.7 * self.difficulty;
        let normal = Normal::new(0.0f32, 1.0f32).expect("unit normal");
        let k_active = (self.num_features / 8).clamp(8, 64).min(self.num_features);

        let mut means = Vec::with_capacity(self.num_classes);
        for _ in 0..self.num_classes {
            let mut m = vec![0.0f32; self.num_features];
            let mut dims: Vec<usize> = (0..self.num_features).collect();
            dims.shuffle(&mut rng);
            let amplitude = 1.0 / (k_active as f32).sqrt();
            for &dim in dims.iter().take(k_active) {
                let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                m[dim] = sign * amplitude * (0.5 + normal.sample(&mut rng).abs());
            }
            // Renormalize to unit energy so difficulty stays calibrated.
            let norm = m.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            for v in m.iter_mut() {
                *v /= norm;
            }
            means.push(m);
        }

        let noise = Normal::new(0.0f32, noise_sigma).expect("noise normal");
        let gen_split = |n: usize, rng: &mut StdRng| -> Vec<Example> {
            (0..n)
                .map(|i| {
                    let y = (i % self.num_classes) as u32;
                    let mean = &means[y as usize];
                    let x: Vec<f32> = mean.iter().map(|&m| m + noise.sample(rng)).collect();
                    Example { x, y }
                })
                .collect()
        };

        let mut train = gen_split(self.train_size, &mut rng);
        let test = gen_split(self.test_size, &mut rng);
        train.shuffle(&mut rng);

        Dataset {
            spec: self.clone(),
            class_means: means,
            train,
            test,
        }
    }
}

/// A generated dataset: train/test splits plus the generating mixture.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// True class means (available to tests that need a Bayes-optimal
    /// reference; serving code never looks at these).
    pub class_means: Vec<Vec<f32>>,
    /// Training examples, shuffled.
    pub train: Vec<Example>,
    /// Held-out test examples.
    pub test: Vec<Example>,
}

impl Dataset {
    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.spec.num_features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Borrow training features/labels as parallel slices (for trainers).
    pub fn train_xy(&self) -> (Vec<&[f32]>, Vec<u32>) {
        let xs = self.train.iter().map(|e| e.x.as_slice()).collect();
        let ys = self.train.iter().map(|e| e.y).collect();
        (xs, ys)
    }

    /// A corrupted copy of the test split: with probability `p`, an
    /// example's features are replaced by pure noise. Used to reproduce the
    /// feature-corruption / concept-drift scenarios in §2.2 and Figure 8.
    pub fn corrupted_test(&self, p: f64, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = Normal::new(0.0f32, 1.0f32).expect("unit normal");
        self.test
            .iter()
            .map(|e| {
                if rng.random_bool(p) {
                    Example {
                        x: (0..e.x.len()).map(|_| normal.sample(&mut rng)).collect(),
                        y: e.y,
                    }
                } else {
                    e.clone()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::mnist_like()
            .with_train_size(50)
            .with_test_size(10);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.train.len(), 50);
        assert_eq!(a.test.len(), 10);
        assert_eq!(a.train[0].x, b.train[0].x);
        assert_eq!(a.test[3].y, b.test[3].y);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::mnist_like()
            .with_train_size(10)
            .with_test_size(5);
        let a = spec.generate(1);
        let b = spec.generate(2);
        assert_ne!(a.train[0].x, b.train[0].x);
    }

    #[test]
    fn shapes_match_table_1() {
        assert_eq!(DatasetSpec::mnist_like().num_features, 784);
        assert_eq!(DatasetSpec::mnist_like().num_classes, 10);
        assert_eq!(DatasetSpec::cifar_like().num_features, 3072);
        assert_eq!(DatasetSpec::imagenet_like().num_classes, 1000);
        assert_eq!(DatasetSpec::speech_like().num_classes, 39);
        assert_eq!(DatasetSpec::mnist_like().paper_size, 70_000);
    }

    #[test]
    fn labels_are_balanced_and_in_range() {
        let d = DatasetSpec::mnist_like()
            .with_train_size(100)
            .with_test_size(20)
            .generate(3);
        let mut counts = [0usize; 10];
        for e in &d.train {
            assert!((e.y as usize) < 10);
            counts[e.y as usize] += 1;
        }
        // 100 examples over 10 classes round-robin: exactly 10 each.
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn nearest_mean_classifier_beats_chance() {
        // Sanity-check the generator: the Bayes-ish classifier (nearest
        // class mean) must do far better than 10% on an easy dataset.
        let d = DatasetSpec::mnist_like()
            .with_train_size(10)
            .with_test_size(200)
            .with_difficulty(0.35)
            .generate(11);
        let correct = d
            .test
            .iter()
            .filter(|e| {
                let pred = d
                    .class_means
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        crate::linalg::sq_dist(&e.x, a)
                            .partial_cmp(&crate::linalg::sq_dist(&e.x, b))
                            .unwrap()
                    })
                    .map(|(i, _)| i as u32)
                    .unwrap();
                pred == e.y
            })
            .count();
        assert!(
            correct as f64 / d.test.len() as f64 > 0.8,
            "nearest-mean accuracy {}/{}",
            correct,
            d.test.len()
        );
    }

    #[test]
    fn corruption_probability_zero_is_identity() {
        let d = DatasetSpec::speech_like()
            .with_train_size(10)
            .with_test_size(20)
            .generate(5);
        let c = d.corrupted_test(0.0, 9);
        assert_eq!(c.len(), d.test.len());
        assert_eq!(c[0].x, d.test[0].x);
    }

    #[test]
    fn corruption_probability_one_replaces_features() {
        let d = DatasetSpec::speech_like()
            .with_train_size(10)
            .with_test_size(20)
            .generate(5);
        let c = d.corrupted_test(1.0, 9);
        assert_ne!(c[0].x, d.test[0].x);
        // Labels are preserved so feedback stays meaningful.
        assert_eq!(c[0].y, d.test[0].y);
    }
}
