//! Multi-frontend fan-in soak: the e2e smoke version of the
//! `BENCH_soak.json` chaos run, deterministic enough for `cargo test`.
//!
//! Three scenarios:
//! - the full scripted timeline (rollout + crash + rehydrate restart +
//!   replica fault + suspect drain + rollback) at smoke scale, asserting
//!   the lossless verdict: zero lost queries, every cache drained;
//! - `rehydrate()` racing live traffic while a rollout is in flight on
//!   the *other* frontend, asserting both converge on the store's
//!   version;
//! - a black-holed replica under sustained traffic: the scheduler marks
//!   it suspect, `drain_suspect_replicas` removes it gracefully, and no
//!   cache waiter is left wedged.

use clipper::core::{AppConfig, BatchConfig, Clipper, ModelId, Output, PolicyKind};
use clipper::rpc::faulty::{FaultConfig, FaultyTransport};
use clipper::rpc::message::{PredictReply, WireOutput};
use clipper::rpc::transport::{BatchTransport, FnTransport, Input};
use clipper::statestore::StateStore;
use clipper::workload::soak::{run_soak, SoakAction, SoakEvent, SoakSpec};
use std::sync::Arc;
use std::time::Duration;

/// A transport answering a constant label.
fn const_transport(label: u32) -> Arc<dyn BatchTransport> {
    Arc::new(FnTransport::new(
        &format!("const-{label}"),
        move |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(label); inputs.len()],
                queue_us: 0,
                compute_us: 20,
            })
        },
    ))
}

/// The standard adversarial timeline at smoke scale: 2 frontends, one
/// rollout synced across, a crash + rehydrate restart of frontend 1, a
/// black-holed replica drained mid-run, and a rollback — zero lost.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn smoke_soak_survives_the_standard_timeline_losslessly() {
    let mut spec = SoakSpec::new(2, 350.0, Duration::from_secs(4)).with_standard_timeline();
    spec.input_space = 256; // small enough to warm caches at smoke rates

    // The fleet rides the same timeline: a container self-registers over
    // f0's `/api/v1/replicas` just after the rollout lands and is expired
    // (graceful zero-drop drain) mid-run — still lossless.
    spec.events.push(SoakEvent {
        at: spec.duration.mul_f64(0.20),
        action: SoakAction::RegisterReplica { version: 2, via: 0 },
    });
    spec.events.push(SoakEvent {
        at: spec.duration.mul_f64(0.55),
        action: SoakAction::ExpireReplica { via: 0 },
    });
    let report = run_soak(spec).await;

    assert!(report.issued > 500, "traffic flowed: {}", report.issued);
    assert!(
        report.all_actions_ok(),
        "every timeline action landed: {:#?}",
        report.actions
    );
    assert_eq!(report.lost(), 0, "zero lost queries: {:?}", report.totals);
    assert!(report.accounted(), "every arrival accounted for");
    assert!(report.is_lossless(), "the soak's verdict");
    assert!(report.converged, "frontends agree with the statestore");

    // The fleet actions fired and landed (registration attached a queue;
    // the expiry found a live member and drained it).
    for label in ["register", "expire"] {
        assert!(
            report.actions.iter().any(|a| a.label.contains(label)),
            "{label} action fired: {:#?}",
            report.actions
        );
    }

    // The crash window is visible as refusals — answered, never lost.
    assert!(report.totals.refused > 0, "crash window refused traffic");
    let crash = report.phases.iter().find(|p| p.name == "crash").unwrap();
    assert!(crash.refused > 0, "refusals land in the crash phase");

    // After rollback the run converges back to v1 everywhere, with every
    // frontend alive and its cache fully drained.
    for (i, f) in report.frontends.iter().enumerate() {
        assert!(f.alive, "frontend {i} alive at the end");
        assert_eq!(f.current_version, Some(1), "frontend {i} rolled back");
        assert_eq!(f.pending_len, 0, "frontend {i} cache drained");
        assert!(f.ok > 0, "frontend {i} served traffic");
    }
}

/// Rehydrate under fire: frontend B is rebuilt from the statestore while
/// frontend A is mid-rollout and traffic keeps flowing into both. B must
/// converge on whatever version A's rollout persisted — whichever side
/// of the race it lands on — without losing a query.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn rehydrate_races_an_in_flight_rollout_and_converges() {
    let mut spec = SoakSpec::new(2, 300.0, Duration::from_millis(2500));
    spec.input_space = 256;
    spec.events = vec![
        // The rollout goes through frontend 0's HTTP API...
        SoakEvent {
            at: Duration::from_millis(700),
            action: SoakAction::Phase("rollout".into()),
        },
        SoakEvent {
            at: Duration::from_millis(700),
            action: SoakAction::Rollout { version: 2, via: 0 },
        },
        // ...and frontend 1 is torn down and rebuilt from the store
        // immediately after it lands (events are sequential, so the
        // restart's rehydrate reads the post-rollout record under
        // traffic that never stopped).
        SoakEvent {
            at: Duration::from_millis(710),
            action: SoakAction::CrashFrontend(1),
        },
        SoakEvent {
            at: Duration::from_millis(900),
            action: SoakAction::Phase("rehydrated".into()),
        },
        SoakEvent {
            at: Duration::from_millis(900),
            action: SoakAction::RestartFrontend(1),
        },
    ];
    let report = run_soak(spec).await;

    assert!(report.all_actions_ok(), "{:#?}", report.actions);
    assert_eq!(report.lost(), 0, "zero lost: {:?}", report.totals);
    assert!(report.is_lossless());
    assert!(
        report.converged,
        "both frontends ended on the persisted version: {:#?}",
        report.frontends
    );
    for f in &report.frontends {
        assert_eq!(f.current_version, Some(2), "converged on the rollout");
    }
    // The rebuilt frontend served real traffic after rehydrating.
    let rehydrated = report
        .phases
        .iter()
        .find(|p| p.name == "rehydrated")
        .unwrap();
    assert!(rehydrated.completed > 0);
    assert_eq!(rehydrated.lost, 0);
}

/// Chaos + graceful drain, on a raw Clipper (no soak harness): black-hole
/// one of two replicas, drive traffic until the scheduler marks it
/// suspect, then `drain_suspect_replicas` — the failing replica comes out
/// cleanly, the healthy one keeps serving, and no cache waiter wedges.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn faulty_replica_is_marked_suspect_drained_and_removed() {
    let clipper = Clipper::builder()
        .statestore(Arc::new(StateStore::new()))
        .build();
    let m = ModelId::new("m", 1);
    clipper.add_model(m.clone(), BatchConfig::default());
    clipper.register_app(
        AppConfig::new("app", vec![m.clone()])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(50))
            .with_default_output(Output::Class(0)),
    );
    let faulty = Arc::new(FaultyTransport::new(
        const_transport(1),
        FaultConfig::default(),
        7,
    ));
    clipper
        .add_replica(&m, faulty.clone() as Arc<dyn BatchTransport>)
        .unwrap();
    clipper.add_replica(&m, const_transport(1)).unwrap();

    // Healthy warm-up: both replicas serve.
    for i in 0..64u32 {
        clipper
            .predict("app", None, Arc::new(vec![i as f32]))
            .await
            .expect("healthy predict");
    }
    assert!(
        clipper.abstraction().suspect_queue_ids(&m).is_empty(),
        "no suspects while healthy"
    );

    // Black-hole the faulty replica and keep the traffic coming. Every
    // batch it receives fails; predictions fail-fill from the app default
    // (still an answer, never an error), and after enough consecutive
    // failed batches the scheduler marks the replica suspect.
    faulty.fail_hard(true);
    let mut waited = 0;
    while clipper.abstraction().suspect_queue_ids(&m).is_empty() && waited < 2_000 {
        for i in 0..16u32 {
            clipper
                .predict(
                    "app",
                    None,
                    Arc::new(vec![1_000.0 + waited as f32 + i as f32]),
                )
                .await
                .expect("predict under fault fail-fills, never errors");
        }
        waited += 1;
    }
    let suspects = clipper.abstraction().suspect_queue_ids(&m);
    assert_eq!(suspects.len(), 1, "exactly the black-holed replica");

    // Drain it gracefully: it must come out, and the healthy replica must
    // keep the model serving.
    let removed = clipper.drain_suspect_replicas(&m).await;
    assert_eq!(removed, suspects, "the suspect was removed");
    assert!(clipper.abstraction().suspect_queue_ids(&m).is_empty());

    for i in 0..32u32 {
        let p = clipper
            .predict("app", None, Arc::new(vec![5_000.0 + i as f32]))
            .await
            .expect("healthy replica keeps serving");
        assert_eq!(p.output, Output::Class(1), "real predictions resumed");
    }

    // Nothing wedged: no cache entry still waiting on the removed
    // replica's batches, no queued work left anywhere.
    assert_eq!(
        clipper.abstraction().cache().pending_len(),
        0,
        "no wedged cache waiters"
    );
    assert_eq!(clipper.abstraction().queue_depth(&m), 0);
    assert_eq!(clipper.abstraction().inflight(&m), 0);
}
