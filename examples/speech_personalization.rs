//! Speech recognition with per-user contextual model selection (§5.3,
//! Figure 10).
//!
//! Eight dialect-specific phoneme recognizers plus one dialect-oblivious
//! model serve a TIMIT-shaped speech workload. Each user gets their own
//! selection state; feedback from their own utterances quickly steers
//! their ensemble toward the models that understand their dialect.
//!
//! ```sh
//! cargo run --release --example speech_personalization
//! ```

use clipper::containers::{
    ContainerConfig, ContainerLogic, LocalContainerTransport, ModelContainer, TimingModel,
};
use clipper::core::{AppConfig, Clipper, Feedback, ModelId, PolicyKind};
use clipper::ml::speech::{DialectModel, SpeechCorpus, NUM_DIALECTS};
use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() {
    println!("== Personalized speech recognition ==\n");

    let corpus = SpeechCorpus::default_corpus(2024);

    // Train one model per dialect plus a global model — the paper's HTK
    // deployment, one model container each.
    let clipper = Clipper::builder().build();
    let mut ids = Vec::new();
    for d in 0..NUM_DIALECTS as u32 {
        let utts = corpus.training_utterances(Some(d), 80, 20, 100 + d as u64);
        let model = Arc::new(DialectModel::train(&format!("dialect-{d}"), &utts));
        let id = ModelId::new(&format!("dialect-{d}"), 1);
        deploy(&clipper, &id, model);
        ids.push(id);
    }
    let global = Arc::new(DialectModel::train(
        "global",
        &corpus.training_utterances(None, 160, 20, 999),
    ));
    let global_id = ModelId::new("global", 1);
    deploy(&clipper, &global_id, global);
    ids.push(global_id);

    clipper.register_app(
        AppConfig::new("speech", ids)
            // η tuned for 9 arms under importance weighting: large values
            // make single unlucky draws crater good arms.
            .with_policy(PolicyKind::Exp3 { eta: 0.5 })
            .with_slo(Duration::from_millis(50)),
    );

    // Simulate three users from different dialects speaking and correcting
    // the transcriptions (implicit feedback).
    let mut rng = StdRng::seed_from_u64(5);
    for user in [3u32, 11, 22] {
        let dialect = corpus.dialect_of(user);
        let ctx = format!("user-{user}");
        let mut errors_first10 = 0.0;
        let mut errors_last10 = 0.0;
        let rounds = 120;
        for round in 0..rounds {
            let utt = corpus.utterance(user, 30, &mut rng);
            let input = Arc::new(utt.flatten());
            let p = clipper
                .predict("speech", Some(&ctx), input.clone())
                .await
                .expect("prediction");
            let predicted = match &p.output {
                clipper::core::Output::Labels(l) => l.clone(),
                other => panic!("expected transcription, got {other:?}"),
            };
            let err = clipper::ml::eval::sequence_error_rate(&utt.phonemes, &predicted);
            if round < 10 {
                errors_first10 += err / 10.0;
            }
            if round >= rounds - 10 {
                errors_last10 += err / 10.0;
            }
            clipper
                .feedback("speech", Some(&ctx), input, Feedback::labels(utt.phonemes))
                .await
                .expect("feedback");
        }
        let state = clipper.policy_state("speech", Some(&ctx)).unwrap();
        let probs = state.probabilities();
        let (best_idx, best_p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!(
            "user {user} (dialect {dialect}): phoneme error {:.1}% → {:.1}% after {rounds} rounds; \
             policy now favors {} (p={:.2})",
            errors_first10 * 100.0,
            errors_last10 * 100.0,
            state.models[best_idx].name,
            best_p
        );
    }

    println!(
        "\ncontexts stored in the statestore: {}",
        clipper.state_manager().context_count()
    );
}

fn deploy(clipper: &Clipper, id: &ModelId, model: Arc<DialectModel>) {
    clipper.add_model(id.clone(), Default::default());
    let container = ModelContainer::new(ContainerConfig {
        name: format!("{}:0", id.name),
        model_name: id.name.clone(),
        model_version: 1,
        logic: ContainerLogic::Transcriber(model),
        timing: TimingModel::Measured,
        seed: 3,
    });
    clipper
        .add_replica(id, LocalContainerTransport::new(container))
        .expect("replica");
}
