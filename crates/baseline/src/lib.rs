//! TensorFlow-Serving-like baseline (§6's comparison system).
//!
//! The paper characterizes TensorFlow Serving as: tightly coupled to the
//! model (same process, no RPC boundary), **static** hand-tuned batch
//! sizes with a purely timeout-based dispatch to avoid starvation, no
//! latency objective, no cache, no feedback, one model per server. This
//! crate implements exactly that server so the Figure-4/11 comparisons run
//! against a faithful architectural stand-in rather than a strawman.
//!
//! Like TF-Serving, the server keeps the device saturated by queueing the
//! next batch while the current one executes (`pipeline_depth = 2`).

use clipper_containers::ModelContainer;
use clipper_metrics::{Histogram, Meter, Registry};
use clipper_rpc::message::WireOutput;
use clipper_rpc::transport::Input;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::{mpsc, oneshot, Semaphore};

/// Configuration for a [`TfServingLike`] server.
#[derive(Clone, Debug)]
pub struct TfsConfig {
    /// The hand-tuned static batch size (512/128/16 in Figure 11).
    pub batch_size: usize,
    /// Dispatch an under-full batch after this timeout (starvation guard).
    pub batch_timeout: Duration,
    /// Request queue depth before load shedding.
    pub queue_capacity: usize,
    /// Batches in flight at once (2 = double buffering, as TF-Serving
    /// pushes queueing into the framework).
    pub pipeline_depth: usize,
}

impl Default for TfsConfig {
    fn default() -> Self {
        TfsConfig {
            batch_size: 128,
            batch_timeout: Duration::from_millis(5),
            queue_capacity: 16_384,
            pipeline_depth: 2,
        }
    }
}

/// Telemetry for the baseline server.
#[derive(Clone)]
pub struct TfsMetrics {
    /// End-to-end request latency (µs).
    pub latency_us: Histogram,
    /// Time requests spend queued before dispatch (µs).
    pub queue_us: Histogram,
    /// Model compute per batch (µs).
    pub predict_us: Histogram,
    /// Dispatched batch sizes.
    pub batch_size: Histogram,
    /// Completed requests.
    pub completed: Meter,
}

impl TfsMetrics {
    /// Register under `prefix` in `registry`.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        TfsMetrics {
            latency_us: registry.histogram(&format!("{prefix}/latency_us")),
            queue_us: registry.histogram(&format!("{prefix}/queue_us")),
            predict_us: registry.histogram(&format!("{prefix}/predict_us")),
            batch_size: registry.histogram(&format!("{prefix}/batch_size")),
            completed: registry.meter(&format!("{prefix}/completed")),
        }
    }
}

struct Item {
    input: Input,
    enqueued: Instant,
    reply: oneshot::Sender<Result<WireOutput, String>>,
}

/// The tightly-coupled single-model serving system.
pub struct TfServingLike {
    tx: mpsc::Sender<Item>,
    metrics: TfsMetrics,
    task: tokio::task::JoinHandle<()>,
}

impl TfServingLike {
    /// Spawn a server executing `container` in-process.
    pub fn spawn(container: Arc<ModelContainer>, cfg: TfsConfig, metrics: TfsMetrics) -> Arc<Self> {
        let (tx, rx) = mpsc::channel(cfg.queue_capacity.max(1));
        let m = metrics.clone();
        let task = tokio::spawn(serve_loop(rx, container, cfg, m));
        Arc::new(TfServingLike { tx, metrics, task })
    }

    /// Serve one prediction.
    pub async fn predict(&self, input: Vec<f32>) -> Result<WireOutput, String> {
        let start = Instant::now();
        let (otx, orx) = oneshot::channel();
        self.tx
            .try_send(Item {
                input: Arc::new(input),
                enqueued: start,
                reply: otx,
            })
            .map_err(|_| "queue full".to_string())?;
        let out = orx.await.map_err(|_| "server shut down".to_string())??;
        self.metrics
            .latency_us
            .record(start.elapsed().as_micros() as u64);
        self.metrics.completed.mark();
        Ok(out)
    }

    /// This server's telemetry.
    pub fn metrics(&self) -> &TfsMetrics {
        &self.metrics
    }

    /// Stop the server.
    pub fn shutdown(&self) {
        self.task.abort();
    }
}

impl Drop for TfServingLike {
    fn drop(&mut self) {
        self.task.abort();
    }
}

async fn serve_loop(
    mut rx: mpsc::Receiver<Item>,
    container: Arc<ModelContainer>,
    cfg: TfsConfig,
    metrics: TfsMetrics,
) {
    let inflight = Arc::new(Semaphore::new(cfg.pipeline_depth.max(1)));
    loop {
        let permit = match inflight.clone().acquire_owned().await {
            Ok(p) => p,
            Err(_) => return,
        };
        let first = match rx.recv().await {
            Some(item) => item,
            None => return,
        };
        // Static batching: wait up to the timeout for a full batch.
        let mut items = vec![first];
        let deadline = tokio::time::Instant::now() + cfg.batch_timeout;
        while items.len() < cfg.batch_size {
            match tokio::time::timeout_at(deadline, rx.recv()).await {
                Ok(Some(item)) => items.push(item),
                Ok(None) | Err(_) => break,
            }
        }

        let container = container.clone();
        let metrics = metrics.clone();
        tokio::spawn(async move {
            for item in &items {
                metrics
                    .queue_us
                    .record(item.enqueued.elapsed().as_micros() as u64);
            }
            metrics.batch_size.record(items.len() as u64);
            // Arc clones only: the feature data stays shared.
            let inputs: Vec<Input> = items.iter().map(|i| i.input.clone()).collect();
            let result =
                tokio::task::spawn_blocking(move || container.evaluate_blocking(&inputs)).await;
            match result {
                Ok(reply) => {
                    metrics.predict_us.record(reply.compute_us);
                    for (item, out) in items.into_iter().zip(reply.outputs) {
                        let _ = item.reply.send(Ok(out));
                    }
                }
                Err(e) => {
                    let msg = format!("container panicked: {e}");
                    for item in items {
                        let _ = item.reply.send(Err(msg.clone()));
                    }
                }
            }
            drop(permit);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipper_containers::{ContainerConfig, ContainerLogic, LatencyProfile, TimingModel};

    fn fixed_container(label: u32, timing: TimingModel) -> Arc<ModelContainer> {
        ModelContainer::new(ContainerConfig {
            name: "tfs:0".into(),
            model_name: "tfs-model".into(),
            model_version: 1,
            logic: ContainerLogic::Fixed(WireOutput::Class(label)),
            timing,
            seed: 1,
        })
    }

    fn server(label: u32, cfg: TfsConfig) -> Arc<TfServingLike> {
        let metrics = TfsMetrics::register(&Registry::new(), "tfs");
        TfServingLike::spawn(fixed_container(label, TimingModel::Measured), cfg, metrics)
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn serves_predictions() {
        let s = server(9, TfsConfig::default());
        let out = s.predict(vec![1.0, 2.0]).await.unwrap();
        assert_eq!(out, WireOutput::Class(9));
        assert_eq!(s.metrics().completed.count(), 1);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn batches_are_capped_at_static_size() {
        let metrics = TfsMetrics::register(&Registry::new(), "tfs");
        let container = fixed_container(
            0,
            TimingModel::Profile(LatencyProfile::deterministic(
                Duration::from_millis(5),
                Duration::ZERO,
            )),
        );
        let s = TfServingLike::spawn(
            container,
            TfsConfig {
                batch_size: 8,
                batch_timeout: Duration::from_millis(2),
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut tasks = Vec::new();
        for i in 0..64 {
            let s = s.clone();
            tasks.push(tokio::spawn(async move {
                s.predict(vec![i as f32]).await.unwrap()
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
        let snap = metrics.batch_size.snapshot();
        assert!(snap.max() <= 8, "static batch cap exceeded: {}", snap.max());
        assert!(snap.max() >= 2, "under load batches should form");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn timeout_dispatches_underfull_batches() {
        let s = server(
            3,
            TfsConfig {
                batch_size: 512,
                batch_timeout: Duration::from_millis(5),
                ..Default::default()
            },
        );
        // A single lonely request must not wait for 511 friends.
        let start = Instant::now();
        let out = s.predict(vec![0.0]).await.unwrap();
        assert_eq!(out, WireOutput::Class(3));
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "dispatch stuck: {:?}",
            start.elapsed()
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn full_queue_sheds() {
        let metrics = TfsMetrics::register(&Registry::new(), "tfs");
        let container = fixed_container(
            0,
            TimingModel::Profile(LatencyProfile::deterministic(
                Duration::from_millis(100),
                Duration::ZERO,
            )),
        );
        let s = TfServingLike::spawn(
            container,
            TfsConfig {
                batch_size: 1,
                batch_timeout: Duration::ZERO,
                queue_capacity: 2,
                pipeline_depth: 1,
            },
            metrics,
        );
        let mut errors = 0;
        let mut tasks = Vec::new();
        for i in 0..32 {
            let s = s.clone();
            tasks.push(tokio::spawn(async move { s.predict(vec![i as f32]).await }));
        }
        for t in tasks {
            if t.await.unwrap().is_err() {
                errors += 1;
            }
        }
        assert!(errors > 0, "expected load shedding on a tiny queue");
    }
}
